"""Unit tests for the DMP / static / single-path streamers."""

import pytest

from repro.core.client import StreamClient
from repro.core.server_queue import ServerQueue
from repro.core.source import VideoSource
from repro.core.streamers import (
    DmpStreamer,
    SinglePathStreamer,
    StaticStreamer,
)
from repro.sim.engine import Simulator
from repro.sim.link import duplex_link
from repro.sim.node import Node
from repro.tcp.socket import TcpConnection


def build_paths(bandwidths, seed=0, delay=0.02, limit=100):
    """Server multihomed to one client interface per path."""
    sim = Simulator(seed=seed)
    server = Node(sim, "server")
    client = StreamClient()
    connections = []
    for k, bandwidth in enumerate(bandwidths, start=1):
        client_if = Node(sim, f"client{k}")
        duplex_link(sim, server, client_if, bandwidth, delay,
                    queue_limit_pkts=limit)
        connections.append(TcpConnection(
            sim, server, client_if, send_buffer_pkts=16,
            on_deliver=client.deliver_callback(f"path{k}")))
    return sim, connections, client


def stream(sim, streamer, mu, duration, extra=30.0):
    queue = getattr(streamer, "queue", None)
    source = VideoSource(sim, queue, mu=mu, duration_s=duration)
    streamer.attach_source(source)
    sim.run(until=duration + extra)
    return source


def test_dmp_equal_paths_split_evenly():
    sim, conns, client = build_paths([1e6, 1e6])
    streamer = DmpStreamer(sim, conns)
    stream(sim, streamer, mu=60, duration=30)
    assert client.received == 1800
    shares = streamer.path_shares
    assert shares[0] == pytest.approx(0.5, abs=0.1)


def test_dmp_faster_path_carries_more():
    # Path 1 has 4x the bandwidth of path 2; both below demand so the
    # scheme is bandwidth-limited and shares track capacity.
    sim, conns, client = build_paths([8e5, 2e5])
    streamer = DmpStreamer(sim, conns)
    stream(sim, streamer, mu=100, duration=30, extra=120)
    shares = streamer.path_shares
    assert shares[0] > 0.65
    assert shares[0] + shares[1] == pytest.approx(1.0)


def test_dmp_all_packets_delivered_once():
    sim, conns, client = build_paths([1e6, 5e5], seed=3)
    streamer = DmpStreamer(sim, conns)
    source = stream(sim, streamer, mu=80, duration=20, extra=60)
    assert client.received == source.total_packets
    assert client.duplicates == 0
    numbers = sorted(n for n, _ in client.arrivals)
    assert numbers == list(range(source.total_packets))


def test_dmp_adapts_to_mid_stream_degradation():
    sim, conns, client = build_paths([1e6, 1e6], seed=4)
    streamer = DmpStreamer(sim, conns)
    queue = streamer.queue
    source = VideoSource(sim, queue, mu=100, duration_s=40)
    streamer.attach_source(source)
    sim.run(until=20)
    before = list(streamer.sent_per_path)
    # Path 2's bandwidth collapses mid-stream.
    _forward_link(conns[1]).bandwidth_bps = 5e4
    sim.run(until=80)
    after = streamer.sent_per_path
    delta1 = after[0] - before[0]
    delta2 = after[1] - before[1]
    assert delta1 > 2.0 * delta2  # traffic shifted to healthy path


def _forward_link(connection):
    node = connection.sender.node
    return node.route_for(connection.sender.dst_name)


def test_dmp_requires_connections():
    with pytest.raises(ValueError):
        DmpStreamer(Simulator(), [])


def test_dmp_attach_requires_same_queue():
    sim, conns, client = build_paths([1e6])
    streamer = DmpStreamer(sim, conns)
    foreign = VideoSource(sim, ServerQueue(), mu=10, duration_s=1)
    with pytest.raises(ValueError):
        streamer.attach_source(foreign)


def test_single_path_streamer_is_dmp_with_one_path():
    sim, conns, client = build_paths([1e6])
    streamer = SinglePathStreamer(sim, conns[0])
    source = stream(sim, streamer, mu=50, duration=10)
    assert client.received == source.total_packets
    assert streamer.path_shares == [1.0]


def test_static_equal_weights_alternate():
    sim, conns, client = build_paths([1e6, 1e6])
    streamer = StaticStreamer(sim, conns)
    stream(sim, streamer, mu=40, duration=10)
    # Exact odd/even split regardless of dynamics.
    assert streamer.sent_per_path[0] == streamer.sent_per_path[1]
    assert client.received == 400


def test_static_does_not_adapt_to_capacity():
    # Slow path gets half the packets anyway; they arrive late or not
    # at all within the horizon, unlike DMP on the same paths.
    sim, conns, client = build_paths([8e5, 1e5], seed=6)
    streamer = StaticStreamer(sim, conns)
    stream(sim, streamer, mu=80, duration=20, extra=20)
    assigned = streamer.assigned_per_path
    assert abs(assigned[0] - assigned[1]) <= 1
    assert client.received < 1600  # slow half still in flight


def test_static_weighted_split():
    sim, conns, client = build_paths([1e6, 1e6])
    streamer = StaticStreamer(sim, conns, weights=[3, 1])
    stream(sim, streamer, mu=40, duration=10)
    sent = streamer.sent_per_path
    assert sent[0] == pytest.approx(3 * sent[1], rel=0.05)


def test_static_invalid_weights():
    sim, conns, client = build_paths([1e6, 1e6])
    with pytest.raises(ValueError):
        StaticStreamer(sim, conns, weights=[1.0])
    with pytest.raises(ValueError):
        StaticStreamer(sim, conns, weights=[1.0, -1.0])


def test_dmp_beats_static_on_asymmetric_paths():
    mu, duration = 80, 30
    sim_d, conns_d, client_d = build_paths([7e5, 3e5], seed=9)
    dmp = DmpStreamer(sim_d, conns_d)
    stream(sim_d, dmp, mu=mu, duration=duration, extra=10)

    sim_s, conns_s, client_s = build_paths([7e5, 3e5], seed=9)
    static = StaticStreamer(sim_s, conns_s)
    stream(sim_s, static, mu=mu, duration=duration, extra=10)

    from repro.core.metrics import late_fraction
    tau = 2.0
    dmp_late = late_fraction(client_d.arrivals, mu, tau,
                             total_packets=mu * duration)
    static_late = late_fraction(client_s.arrivals, mu, tau,
                                total_packets=mu * duration)
    assert dmp_late <= static_late
