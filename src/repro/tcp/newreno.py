"""TCP NewReno sender (RFC 3782-style partial-ACK recovery).

The paper's video streams use Reno (Section 5.1); NewReno is provided
as an extension for the TCP-variant ablation.  The difference is
confined to fast recovery: a *partial* ACK (one that advances
``snd_una`` but does not reach the ``recover`` mark recorded when the
loss was detected) immediately retransmits the next missing segment
and stays in fast recovery, so a burst of n losses costs one window
halving and roughly n RTTs rather than a timeout.
"""

from __future__ import annotations

from repro.tcp.reno import RenoSender


class NewRenoSender(RenoSender):
    """Reno with NewReno's fast-recovery partial-ACK handling."""

    def _new_ack_in_recovery(self, ack: int, acked: int) -> None:
        if ack > self.recover:
            # Full ACK: every segment outstanding when the loss was
            # detected is now covered; deflate and leave recovery.
            self.cwnd = self.ssthresh
            self.in_fast_recovery = False
            self.dup_acks = 0
            return
        # Partial ACK: the next hole starts exactly at the new
        # snd_una.  Retransmit it, deflate the window by the amount
        # acknowledged (plus one for the retransmission), stay in
        # recovery.
        self.cwnd = max(self.ssthresh,
                        self.cwnd - acked + 1.0)
        if self._buffer:
            self._transmit(self.snd_una, retransmit=True)
        self._arm_rto(restart=True)
