"""Tests for tcpdump-style trace estimation (Section 6 methodology)."""

import pytest

from repro import BottleneckSpec, PathConfig, StreamingSession
from repro.experiments.measure import (
    data_records,
    estimate_all_flows,
    estimate_flow,
)
from repro.sim.trace import PacketTrace


from functools import lru_cache


@lru_cache(maxsize=4)
def traced_session(seed=3):
    spec = BottleneckSpec(bandwidth_bps=8e5, delay_s=0.01,
                          buffer_pkts=15)
    paths = [PathConfig(bottleneck=spec, n_ftp=2, n_http=3)] * 2
    session = StreamingSession(mu=40, duration_s=120, paths=paths,
                               seed=seed)
    trace = session.attach_packet_trace()
    result = session.run()
    return session, result, trace


def video_flow_key(session, idx):
    sender = session.connections[idx].sender
    return (sender.node.name, sender.port, sender.dst_name,
            sender.dst_port)


def test_estimates_match_sender_internals():
    session, result, trace = traced_session()
    for idx in range(2):
        flow = video_flow_key(session, idx)
        estimate = estimate_flow(trace, flow)
        stats = session.connections[idx].stats()

        # Retransmission fraction: trace view vs sender view.
        assert estimate.retransmission_rate == pytest.approx(
            stats["loss_estimate"], abs=0.02)
        # Loss-event rate is by construction <= retransmission rate.
        assert estimate.loss_rate <= estimate.retransmission_rate \
            + 1e-9
        # RTT within a factor band: the trace sees only the bottleneck
        # crossing, not the access links, so allow generous slack.
        assert estimate.mean_rtt == pytest.approx(
            stats["mean_rtt"], rel=0.4)


def test_estimate_counts_loss_burst_as_one_event():
    session, result, trace = traced_session(seed=3)
    flow = video_flow_key(session, 0)
    estimate = estimate_flow(trace, flow)
    assert estimate.segments > 100
    assert 0.0 <= estimate.loss_rate < 0.2


def test_timeout_ratio_physical_range():
    session, result, trace = traced_session(seed=3)
    for idx in range(2):
        estimate = estimate_flow(trace, video_flow_key(session, idx))
        if estimate.timeout_ratio:
            assert 1.0 <= estimate.timeout_ratio < 30.0


def test_data_records_sorted_and_filtered():
    session, result, trace = traced_session(seed=11)
    flow = video_flow_key(session, 0)
    records = data_records(trace, flow)
    times = [rec.time for rec in records]
    assert times == sorted(times)
    assert all(not rec.is_ack for rec in records)
    assert all(rec.flow_key() == flow for rec in records)


def test_estimate_all_flows_finds_background_too():
    session, result, trace = traced_session(seed=11)
    estimates = estimate_all_flows(trace, min_segments=100)
    # 2 video flows + 4 FTP flows at least.
    assert len(estimates) >= 6


def test_unknown_flow_rejected():
    trace = PacketTrace()
    with pytest.raises(ValueError):
        estimate_flow(trace, ("x", 1, "y", 2))
