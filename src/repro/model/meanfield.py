"""Mean-field population backend: N sessions as a deterministic ODE.

The packet simulator's cost is O(N * events): the committed scaling
curve (266k -> 158k events/s from N=1 to N=200 sessions) puts a
CDN-pop population of 10^6 sessions four orders of magnitude out of
reach.  McDonald & Reynier's mean-field limit (PAPERS.md) is the way
around it: as the number of TCP flows through one RED buffer grows,
every *per-flow* quantity converges to a deterministic process driven
by a queue ODE, so population metrics become a fixed-cost solve whose
wall time is independent of N.

The state here is intensive (per-session), so N never enters the
integration except through per-session shares — the scaled limit is
exactly N-invariant by construction:

* a window *density* per flow class over w = 1..wmax (video flows,
  app-capped at ``mu/paths_per_session``; persistent background flows,
  always backlogged) plus a timeout compartment per class;
* window transport at 1/(2R) per window per second (one increment per
  two RTTs, delayed ACKs), loss at rate ``p(t) * rate_w`` moving mass
  to ``max(w // 2, 1)`` (fast recovery, w >= 4) or the timeout
  compartment (w < 4), timeout exit back to w = 2 after
  ``max(min_rto, to_ratio * R)`` seconds;
* the McDonald-Reynier queue ODE ``dq/dt = A(t)(1 - p) - C`` with the
  RED drop profile of :class:`repro.sim.queueing.REDQueue`
  (``min_th = B/5``, ``max_th = B/2``, ``max_p = 0.1``, hard drop
  above ``max_th``), and drop-tail as the hard-limit case — loss only
  by buffer overflow, ``p = max(0, 1 - C/A)`` at the boundary;
* RTT coupling ``R(t) = base_rtt + q(t)/C``.

The per-session delivered-rate trace (shifted by the one-way delay)
feeds :func:`repro.model.fluid.late_fraction_from_trace`, giving the
per-tau late fractions the packet campaigns measure — and Fig 8-style
(ratio, tau) grids at any N, including N=10^6, in seconds
(:func:`late_fraction_grid`).

Deliberate approximations (the agreement suite pins the resulting
band against :class:`repro.core.campaign.MultiSessionCampaign` at
N = 10/100/1000): sessions are treated as synchronized and
statistically exchangeable (start staggering/churn only shifts each
session's private clock), slow start is collapsed into CA re-entry at
w = 2, RED's averaged queue is approximated by the instantaneous one,
timeout backoff beyond the first stage is ignored, and HTTP background
(short transfers with think times) is not modelled — only persistent
FTP-like flows count toward ``n_background``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.model.fluid import late_fraction_from_trace

FloatArray = npt.NDArray[np.float64]

#: Solver backends a :class:`repro.experiments.configs.Setting` can
#: pick: the packet-level simulator or this mean-field ODE system.
BACKENDS: Tuple[str, ...] = ("packet", "meanfield")

#: Queue disciplines with a mean-field drop profile.  PIE/FQ-PIE keep
#: controller state per *packet interval* that has no clean fluid
#: analogue here; campaigns needing them stay on the packet backend.
MEANFIELD_DISCIPLINES: Tuple[str, ...] = ("droptail", "red")

#: RED profile constants, matching ``repro.sim.queueing.REDQueue``.
RED_MIN_TH_FRACTION = 0.2
RED_MAX_TH_FRACTION = 0.5
RED_MAX_P = 0.1


def resolve_backend(backend: str) -> str:
    """Validate a backend name (mirrors ``mc_kernel.resolve_kernel``)."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"choose from {list(BACKENDS)}")
    return backend


@dataclass(frozen=True)
class MeanFieldSpec:
    """One mean-field population problem (hashed into cache keys).

    Everything is in packets and seconds; ``bandwidth_pps`` and
    ``buffer_pkts`` are the *total* bottleneck capacity and buffer
    (the solver divides by ``n_sessions`` internally, which is the
    only place N appears).
    """

    n_sessions: int
    mu: float
    bandwidth_pps: float
    buffer_pkts: float
    queue_discipline: str = "droptail"
    paths_per_session: int = 2
    n_background: int = 0
    base_rtt_s: float = 0.06
    duration_s: float = 300.0
    warmup_s: float = 20.0
    drain_s: float = 60.0
    wmax: int = 32
    to_ratio: float = 2.0
    min_rto_s: float = 0.2
    dt: float = 0.005

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError("need n_sessions >= 1")
        if self.mu <= 0:
            raise ValueError("mu must be positive")
        if self.bandwidth_pps <= 0 or self.buffer_pkts <= 0:
            raise ValueError("bandwidth and buffer must be positive")
        if self.queue_discipline not in MEANFIELD_DISCIPLINES:
            raise ValueError(
                f"mean-field backend supports "
                f"{list(MEANFIELD_DISCIPLINES)}, "
                f"not {self.queue_discipline!r}")
        if self.paths_per_session < 1:
            raise ValueError("need paths_per_session >= 1")
        if self.n_background < 0:
            raise ValueError("n_background must be non-negative")
        if self.base_rtt_s <= 0:
            raise ValueError("base_rtt_s must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.warmup_s < 0 or self.drain_s < 0:
            raise ValueError("warmup_s/drain_s must be non-negative")
        if self.wmax < 4:
            raise ValueError("need wmax >= 4 (fast-recovery threshold)")
        if self.to_ratio <= 0 or self.min_rto_s < 0:
            raise ValueError("invalid timeout parameters")
        if not 0 < self.dt <= 0.05:
            raise ValueError("need 0 < dt <= 0.05 (Euler stability)")


@dataclass(frozen=True)
class MeanFieldSolution:
    """The solved population trajectory, on the session clock.

    ``times`` spans ``[0, duration_s + drain_s)`` with step
    ``spec.dt`` (t = 0 is the synchronized session start, after the
    background warmup).  ``goodput_pps`` is the per-session delivered
    rate *at the client* (shifted by the one-way delay),
    ``queue_pkts`` the per-session share of the bottleneck queue and
    ``drop_prob`` the instantaneous drop probability.
    """

    spec: MeanFieldSpec
    times: FloatArray
    goodput_pps: FloatArray
    queue_pkts: FloatArray
    drop_prob: FloatArray
    #: Worst absolute drift of the total window-density mass (density
    #: plus timeout compartments, per class) from its initial value
    #: over the whole integration.  The transport operator conserves
    #: mass exactly in exact arithmetic; this bounds the accumulated
    #: float error and is pinned near zero by the property suite.
    mass_error: float = 0.0

    def late_fraction(self, tau: float) -> float:
        """Population (= per-session) late fraction at delay ``tau``."""
        return late_fraction_from_trace(
            self.goodput_pps, self.spec.mu, tau, self.spec.dt,
            video_duration_s=self.spec.duration_s)

    def late_fractions(self, taus: Sequence[float]) \
            -> Dict[float, float]:
        """Late fraction per startup delay (tau -> fraction)."""
        return {float(tau): self.late_fraction(float(tau))
                for tau in taus}

    def population(self, tau: float) -> Dict[str, float]:
        """Population summary in the shape of
        :meth:`repro.core.campaign.CampaignResult.population` — in the
        mean-field limit every session sees the same trajectory, so
        the distribution is degenerate."""
        value = self.late_fraction(tau)
        return {"mean": value, "min": value, "max": value,
                "p50": value, "p95": value, "p99": value}

    @property
    def mean_queue_pkts(self) -> float:
        """Time-averaged total bottleneck queue (packets)."""
        return float(np.mean(self.queue_pkts)) * self.spec.n_sessions

    @property
    def mean_drop_prob(self) -> float:
        """Arrival-weighted would be fairer; time-averaged is stable."""
        return float(np.mean(self.drop_prob))


def solve_meanfield(spec: MeanFieldSpec) -> MeanFieldSolution:
    """Integrate the mean-field system for one population problem.

    Fixed-step explicit Euler on per-session (intensive) state: cost
    depends on the horizon and ``dt``, never on ``spec.n_sessions``.
    Pure float arithmetic, no RNG, no wall clock — equal specs give
    bit-identical solutions.
    """
    n = spec.n_sessions
    k = spec.paths_per_session
    capacity = spec.bandwidth_pps / n       # per-session share, pkts/s
    buffer_share = spec.buffer_pkts / n     # per-session share, pkts
    background = spec.n_background / n      # background flows/session
    app_cap = spec.mu / k                   # per-path video rate cap
    dt = spec.dt
    red = spec.queue_discipline == "red"
    min_th = RED_MIN_TH_FRACTION * buffer_share
    max_th = RED_MAX_TH_FRACTION * buffer_share

    wmax = spec.wmax
    w = np.arange(1, wmax + 1, dtype=np.float64)
    # Loss outcome per window: fast recovery halves w >= 4 down to
    # max(w // 2, 1); w < 4 cannot raise three duplicate ACKs and
    # times out instead.
    hi_mask = w >= 4.0
    lo_mask = ~hi_mask
    halving = np.zeros((wmax, wmax))
    for source in range(4, wmax + 1):
        halving[max(source // 2, 1) - 1, source - 1] = 1.0
    scatter = halving.T  # loss-row @ scatter adds the halved mass

    # Row 0: the session's video flows (mass k); row 1: persistent
    # background flows (mass n_background / n).  Everything starts in
    # CA at w = 2.
    density = np.zeros((2, wmax))
    density[0, 1] = float(k)
    density[1, 1] = background
    timeout_mass = np.zeros(2)
    caps = np.array([[app_cap], [np.inf]])
    queue = 0.0

    warmup_steps = int(round(spec.warmup_s / dt))
    active_steps = int(round((spec.duration_s + spec.drain_s) / dt))
    goodput = np.zeros(active_steps)
    queue_trace = np.zeros(active_steps)
    drop_trace = np.zeros(active_steps)
    delay_trace = np.zeros(active_steps)
    base_one_way = spec.base_rtt_s / 2.0

    tiny = 1e-300
    initial_mass = float(density.sum() + timeout_mass.sum())
    mass_error = 0.0
    for step in range(warmup_steps + active_steps):
        video_active = step >= warmup_steps
        rtt = spec.base_rtt_s + queue / capacity
        rates = np.minimum(w / rtt, caps)
        if not video_active:
            rates[0, :] = 0.0
        arrival = float((density * rates).sum())

        # -- queue update and effective drop probability --------------
        arr = arrival * dt
        early_p = 0.0
        if red and arr > 0:
            if queue >= max_th:
                early_p = 1.0
            elif queue > min_th:
                early_p = RED_MAX_P * (queue - min_th) \
                    / (max_th - min_th)
        kept = arr * (1.0 - early_p)
        room = buffer_share - queue + capacity * dt
        if kept > room:
            kept = max(room, 0.0)
        drop_p = 1.0 - kept / arr if arr > 0 else 0.0
        next_queue = max(queue + kept - capacity * dt, 0.0)

        if video_active:
            idx = step - warmup_steps
            goodput[idx] = float(
                (density[0] * rates[0]).sum()) * (1.0 - drop_p)
            queue_trace[idx] = queue
            drop_trace[idx] = drop_p
            delay_trace[idx] = base_one_way + queue / capacity

        # -- window-density transport ---------------------------------
        growth = dt / (2.0 * rtt)
        can_grow = (w / rtt) < caps
        can_grow[:, -1] = False
        if not video_active:
            can_grow[0, :] = False
        up = density * growth * can_grow
        loss = density * (drop_p * dt) * rates
        out = up + loss
        factor = np.clip(density / np.maximum(out, tiny), 0.0, 1.0)
        up *= factor
        loss *= factor
        density -= up + loss
        density[:, 1:] += up[:, :-1]
        density += (loss * hi_mask) @ scatter
        timeout_in = (loss * lo_mask).sum(axis=1)
        timeout_s = max(spec.min_rto_s, spec.to_ratio * rtt)
        timeout_out = timeout_mass * min(dt / timeout_s, 1.0)
        timeout_mass += timeout_in - timeout_out
        density[:, 1] += timeout_out
        queue = next_queue
        drift = abs(float(density.sum() + timeout_mass.sum())
                    - initial_mass)
        if drift > mass_error:
            mass_error = drift

    # Shift delivery by the (monotone-arrival-time) one-way delay and
    # resample back onto the uniform session-clock grid.
    times = np.arange(active_steps) * dt
    cumulative = np.cumsum(goodput) * dt
    arrival_times = times + delay_trace
    shifted = np.interp(times, arrival_times, cumulative,
                        left=0.0, right=float(cumulative[-1])) \
        if active_steps else cumulative
    rates_shifted = np.maximum(
        np.diff(shifted, prepend=0.0) / dt, 0.0)

    return MeanFieldSolution(
        spec=spec, times=times, goodput_pps=rates_shifted,
        queue_pkts=queue_trace, drop_prob=drop_trace,
        mass_error=mass_error)


def late_fraction_grid(base: MeanFieldSpec,
                       ratios: Sequence[float],
                       taus: Sequence[float]) -> List[Dict[str, object]]:
    """Fig 8-style (provisioning ratio, tau) late-fraction grid.

    The provisioning ratio scales the *per-session* capacity share
    against the playback rate: ``bandwidth_pps = ratio * mu * N``.
    One ODE solve per ratio; every tau is post-processing on the same
    trace, so a full grid at N = 10^6 costs seconds.
    """
    rows: List[Dict[str, object]] = []
    for ratio in ratios:
        if ratio <= 0:
            raise ValueError("provisioning ratios must be positive")
        spec = replace(base, bandwidth_pps=float(
            ratio * base.mu * base.n_sessions))
        solution = solve_meanfield(spec)
        rows.append({
            "ratio": float(ratio),
            "late_fraction": {f"{float(tau):g}":
                              solution.late_fraction(float(tau))
                              for tau in taus},
            "mean_drop_prob": solution.mean_drop_prob,
            "mean_queue_pkts": solution.mean_queue_pkts,
        })
    return rows
