"""repro-lint: domain-aware static analysis for this repository.

The generic ruff pass catches undefined names and unused imports; this
package encodes the *domain* invariants that every PR so far has had to
defend by hand:

* bit-identical determinism under a seeded RNG (RL001, RL002),
* probe payloads matching the ``repro.obs`` SCHEMA registry (RL003),
* cache keys covering every field that affects results (RL004),
* no float equality in the analytical model (RL005).

Run it as ``python -m tools.repro_lint src tests benchmarks``.  Output
is ruff-style ``path:line:col: RULE message`` lines, exit status 1 when
anything is found.  Findings are suppressed inline with::

    something_flagged()  # repro-lint: disable=RL001 -- why it is fine

Suppressions that suppress nothing are themselves findings (RL000), so
stale suppressions cannot accumulate.  See ``docs/static-analysis.md``
for the rule catalogue and the policy on adding rules.
"""

from tools.repro_lint.engine import (
    Finding,
    Project,
    SourceFile,
    lint_paths,
    lint_project,
    load_project,
)

__all__ = [
    "Finding",
    "Project",
    "SourceFile",
    "lint_paths",
    "lint_project",
    "load_project",
]
