"""Mean-field backend benchmark: solve time vs the packet simulator.

The mean-field backend's deliverable is an N-independent solve: the
packet simulator's cost grows linearly in the number of sessions
(events scale with N), while the population ODE integrates intensive
per-session state whose cost depends only on the horizon and ``dt``.
This benchmark measures both sides where both are affordable
(N = 10/100/1000, the validation anchors of
``tests/test_meanfield_agreement.py``), then extends the mean-field
side to N = 10^4 and 10^6 and times a full Fig 8-style (ratio, tau)
late-fraction grid at N = 10^6.

Two machine-free within-report gates ride on the output
(``tools/perf_track``):

* ``meanfield.scaling_n1e6_vs_n10`` — the N=10^6 solve must stay
  within 10x of the N=10 solve (N-independence in wall time);
* ``meanfield.speedup_vs_extrapolated`` — the N=10^6 grid must solve
  at least 100x faster than the packet-sim cost extrapolated linearly
  from the measured N=1000 point.
"""

from __future__ import annotations

import time

from repro.core.campaign import MultiSessionCampaign
from repro.model.meanfield import (
    MeanFieldSpec,
    late_fraction_grid,
    solve_meanfield,
)
from repro.sim.topology import BottleneckSpec

#: The agreement-suite operating envelope (congested, shallow buffer).
MU = 10.0
PATHS = 2
RATIO = 0.75
DELAY_S = 0.04
BUFFER_PER_SESSION = 2.0
BASE_RTT_S = 2.0 * (2.0 * 0.010 + DELAY_S)
SEED = 1
WARMUP_S = 5.0
DRAIN_S = 10.0
SERVICE_BATCH = 8
TAU = 4.0

MEASURED_NS = (10, 100, 1000)
MEANFIELD_ONLY_NS = (10_000, 1_000_000)
GRID_N = 1_000_000
GRID_RATIOS = (0.5, 0.75, 1.0, 1.25, 1.6)
GRID_TAUS = (2.0, 4.0, 8.0, 16.0)

MODES = {
    "quick": {"duration_s": 8.0},
    "full": {"duration_s": 20.0},
}


def _spec(n_sessions: int, duration_s: float) -> MeanFieldSpec:
    return MeanFieldSpec(
        n_sessions=n_sessions, mu=MU,
        bandwidth_pps=RATIO * MU * n_sessions,
        buffer_pkts=BUFFER_PER_SESSION * n_sessions,
        queue_discipline="droptail", paths_per_session=PATHS,
        base_rtt_s=BASE_RTT_S, duration_s=duration_s,
        warmup_s=WARMUP_S, drain_s=DRAIN_S)


def _packet_seconds(n_sessions: int, duration_s: float) -> dict:
    bandwidth_pps = RATIO * MU * n_sessions
    campaign = MultiSessionCampaign(
        mu=MU, duration_s=duration_s, n_sessions=n_sessions,
        bottleneck=BottleneckSpec(
            bandwidth_bps=bandwidth_pps * 1500 * 8, delay_s=DELAY_S,
            buffer_pkts=int(round(BUFFER_PER_SESSION * n_sessions))),
        paths_per_session=PATHS, queue_discipline="droptail",
        seed=SEED, stagger_s=5.0 / n_sessions, warmup_s=WARMUP_S,
        service_batch=SERVICE_BATCH)
    started = time.perf_counter()
    result = campaign.run(drain_s=DRAIN_S)
    elapsed = time.perf_counter() - started
    fractions = result.late_fractions(TAU)
    return {
        "seconds": elapsed,
        "events": result.events_processed,
        "late_fraction": sum(fractions) / len(fractions),
    }


def _meanfield_seconds(n_sessions: int, duration_s: float) -> dict:
    spec = _spec(n_sessions, duration_s)
    started = time.perf_counter()
    solution = solve_meanfield(spec)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "late_fraction": solution.late_fraction(TAU),
    }


def run(mode: str) -> dict:
    duration_s = MODES[mode]["duration_s"]

    points = []
    solve_by_n = {}
    packet_by_n = {}
    for n_sessions in MEASURED_NS:
        packet = _packet_seconds(n_sessions, duration_s)
        meanfield = _meanfield_seconds(n_sessions, duration_s)
        packet_by_n[str(n_sessions)] = packet["seconds"]
        solve_by_n[str(n_sessions)] = meanfield["seconds"]
        points.append({
            "n_sessions": n_sessions,
            "packet": packet,
            "meanfield": meanfield,
            "speedup": packet["seconds"] / meanfield["seconds"],
        })
    for n_sessions in MEANFIELD_ONLY_NS:
        meanfield = _meanfield_seconds(n_sessions, duration_s)
        solve_by_n[str(n_sessions)] = meanfield["seconds"]
        points.append({
            "n_sessions": n_sessions,
            "packet": None,  # 4 orders of magnitude out of reach
            "meanfield": meanfield,
            "speedup": None,
        })

    # Full (ratio, tau) grid at N=10^6 vs the packet cost extrapolated
    # linearly in N from the measured N=1000 run (one campaign per
    # ratio point; linear-in-N is *generous* to the packet sim — the
    # committed scaling curve shows per-event cost rising with N).
    started = time.perf_counter()
    rows = late_fraction_grid(_spec(GRID_N, duration_s),
                              ratios=GRID_RATIOS, taus=GRID_TAUS)
    grid_seconds = time.perf_counter() - started
    anchor = packet_by_n[str(MEASURED_NS[-1])]
    extrapolated = anchor * (GRID_N / MEASURED_NS[-1]) \
        * len(GRID_RATIOS)

    return {
        "config": {
            "mu": MU, "ratio": RATIO, "tau": TAU, "seed": SEED,
            "duration_s": duration_s,
            "buffer_per_session": BUFFER_PER_SESSION,
            "queue_discipline": "droptail",
            "service_batch": SERVICE_BATCH,
            "grid_ratios": list(GRID_RATIOS),
            "grid_taus": list(GRID_TAUS),
        },
        "points": points,
        "solve_seconds_by_n": solve_by_n,
        "packet_seconds_by_n": packet_by_n,
        "grid": {
            "n_sessions": GRID_N,
            "seconds": grid_seconds,
            "extrapolated_packet_seconds": extrapolated,
            "speedup_vs_extrapolated": extrapolated / grid_seconds,
            "rows": rows,
        },
    }
