"""Packet-level simulator microbenchmark: event-loop step rate.

Runs one DMP streaming session of the standard 2-2 validation setting
and reports how many discrete events the engine dispatches per
wall-clock second — the number PR 2's event-loop work moved, tracked
here so later PRs cannot silently regress it.
"""

from __future__ import annotations

import time

from repro.core.session import StreamingSession
from repro.experiments.configs import ALL_SETTINGS

SETTING = "2-2"
SEED = 1

MODES = {
    "quick": {"duration_s": 30.0},
    "full": {"duration_s": 120.0},
}


def run(mode: str) -> dict:
    duration_s = MODES[mode]["duration_s"]
    setting = ALL_SETTINGS[SETTING]
    session = StreamingSession(
        mu=setting.mu, duration_s=duration_s,
        paths=setting.path_configs(), scheme="dmp",
        shared_bottleneck=setting.shared_bottleneck, seed=SEED)
    started = time.perf_counter()
    result = session.run()
    elapsed = time.perf_counter() - started
    events = session.sim._processed
    return {
        "config": {"setting": SETTING, "scheme": "dmp", "seed": SEED,
                   "duration_s": duration_s},
        "events": events,
        "delivered_packets": len(result.arrivals),
        "seconds": elapsed,
        "events_per_second": events / elapsed,
    }
