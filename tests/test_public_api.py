"""API-surface tests: the documented entry points exist and compose."""


def test_top_level_exports():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_core_exports():
    from repro import core
    for name in core.__all__:
        assert hasattr(core, name), name


def test_model_exports():
    from repro import model
    for name in model.__all__:
        assert hasattr(model, name), name


def test_tcp_exports():
    from repro import tcp
    for name in tcp.__all__:
        assert hasattr(tcp, name), name
    assert set(tcp.SENDER_VARIANTS) == {"reno", "newreno", "sack"}


def test_sim_exports():
    from repro import sim
    for name in sim.__all__:
        assert hasattr(sim, name), name


def test_experiments_exports():
    from repro import experiments
    for name in experiments.__all__:
        assert hasattr(experiments, name), name


def test_readme_quickstart_snippet_runs():
    """The code block in README.md must actually work (abridged)."""
    from repro import BottleneckSpec, PathConfig, StreamingSession
    from repro.model import DmpModel, FlowParams

    path = PathConfig(
        bottleneck=BottleneckSpec(bandwidth_bps=3.7e6, delay_s=0.001,
                                  buffer_pkts=50),
        n_ftp=2, n_http=5)
    session = StreamingSession(mu=50, duration_s=15,
                               paths=[path, path], scheme="dmp",
                               seed=7)
    result = session.run()
    assert 0.0 <= result.late_fraction(tau=6.0) <= 1.0
    assert len(result.path_shares) == 2

    flows = [FlowParams(p=max(s["loss_event_estimate"], 1e-4),
                        rtt=s["mean_rtt"],
                        to_ratio=max(s["timeout_ratio"], 1.0),
                        loss_model="sparse")
             for s in result.flow_stats]
    model = DmpModel(flows, mu=50, tau=6.0)
    estimate = model.late_fraction_mc(horizon_s=2000)
    assert 0.0 <= estimate.late_fraction <= 1.0


def test_session_glitches_helper():
    from repro import BottleneckSpec, PathConfig, StreamingSession
    paths = [PathConfig(bottleneck=BottleneckSpec(
        bandwidth_bps=2e6, delay_s=0.005, buffer_pkts=40))] * 2
    result = StreamingSession(mu=40, duration_s=10, paths=paths,
                              seed=1).run()
    stats = result.glitches(tau=2.0)
    assert stats.glitch_count == 0
    assert stats.late_packets == 0


def test_internet_path_generators_in_spec():
    import random
    from repro.experiments.internet import _hefei_path, _sf_adsl_path
    rng = random.Random(1)
    for _ in range(50):
        sf = _sf_adsl_path(rng)
        assert 1.5e6 <= sf.bottleneck.bandwidth_bps <= 2.5e6
        assert 0.025 <= sf.bottleneck.delay_s <= 0.045
        assert 1 <= sf.n_ftp <= 3
        hefei = _hefei_path(rng)
        assert 2.5e6 <= hefei.bottleneck.bandwidth_bps <= 3.5e6
        assert 0.110 <= hefei.bottleneck.delay_s <= 0.140
