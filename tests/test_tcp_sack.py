"""Tests for the SACK variant."""

from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sack import SackSender

from tests.tcp_harness import FakeLink


class SackPair:
    def __init__(self, drop_seqs=None, delay=0.05):
        self.sim = Simulator(seed=0)
        self.a = Node(self.sim, "a")
        self.b = Node(self.sim, "b")
        self.forward = FakeLink(self.sim, self.a, self.b, delay=delay,
                                drop_seqs=drop_seqs)
        self.backward = FakeLink(self.sim, self.b, self.a, delay=delay)
        self.a.add_route("b", self.forward)
        self.b.add_route("a", self.backward)
        self.delivered = []
        self.receiver = TcpReceiver(
            self.sim, self.b, sack_enabled=True,
            on_deliver=lambda p, s, t: self.delivered.append(s))
        self.sender = SackSender(
            self.sim, self.a, dst_name="b",
            dst_port=self.receiver.port, send_buffer_pkts=1000)

    def write_all(self, count):
        for i in range(count):
            self.sender.write(f"pkt{i}")

    def run(self, until=60.0):
        self.sim.run(until=until)


def test_receiver_sack_blocks():
    sim = Simulator()
    node = Node(sim, "r")
    receiver = TcpReceiver(sim, node, sack_enabled=True)
    receiver._ooo = {5: None, 6: None, 9: None, 11: None, 12: None}
    blocks = receiver._sack_blocks()
    assert blocks == ((11, 13), (9, 10), (5, 7))


def test_receiver_sack_block_cap():
    sim = Simulator()
    node = Node(sim, "r")
    receiver = TcpReceiver(sim, node, sack_enabled=True,
                           max_sack_blocks=2)
    receiver._ooo = {1: None, 3: None, 5: None, 7: None}
    assert len(receiver._sack_blocks()) == 2


def test_single_loss_recovery():
    pair = SackPair(drop_seqs=[20])
    pair.write_all(60)
    pair.run()
    assert pair.delivered == list(range(60))
    assert pair.sender.timeouts == 0
    assert pair.sender.fast_retransmits == 1


def test_burst_loss_one_episode_no_timeout():
    pair = SackPair(drop_seqs=[30, 31, 32, 33])
    pair.write_all(150)
    pair.run()
    assert pair.delivered == list(range(150))
    assert pair.sender.timeouts == 0
    assert pair.sender.fast_retransmits == 1
    # Exactly the holes were retransmitted (no spurious go-back-N).
    assert pair.sender.retransmits <= 6


def test_scattered_losses_recovered():
    pair = SackPair(drop_seqs=[25, 40, 41, 55])
    pair.write_all(200)
    pair.run()
    assert pair.delivered == list(range(200))


def test_sack_beats_reno_on_bursts():
    from tests.tcp_harness import TcpPair
    drops = [30, 31, 32, 33]
    reno = TcpPair(drop_seqs=list(drops))
    reno.write_all(150)
    reno.run()
    sack = SackPair(drop_seqs=list(drops))
    sack.write_all(150)
    sack.run()
    reno_cost = reno.sender.timeouts + reno.sender.fast_retransmits
    sack_cost = sack.sender.timeouts + sack.sender.fast_retransmits
    assert sack_cost <= reno_cost
    assert sack.sender.timeouts == 0


def test_connection_level_sack():
    from repro.sim.link import duplex_link
    from repro.tcp.socket import TcpConnection
    sim = Simulator(seed=1)
    a = Node(sim, "a")
    b = Node(sim, "b")
    duplex_link(sim, a, b, 4e5, 0.01, queue_limit_pkts=6)
    got = []
    conn = TcpConnection(sim, a, b, variant="sack",
                         send_buffer_pkts=400,
                         on_deliver=lambda p, s, t: got.append(p))
    assert conn.receiver.sack_enabled
    for i in range(300):
        conn.write(i)
    sim.run(until=300)
    assert got == list(range(300))


def test_session_with_sack_variant():
    from repro import BottleneckSpec, PathConfig, StreamingSession
    spec = BottleneckSpec(bandwidth_bps=1.5e6, delay_s=0.005,
                          buffer_pkts=30)
    paths = [PathConfig(bottleneck=spec, n_ftp=1)] * 2
    session = StreamingSession(mu=40, duration_s=20, paths=paths,
                               seed=2, tcp_variant="sack")
    result = session.run()
    assert len(result.arrivals) == result.total_packets
