"""Campaign-scoped telemetry: spans, metrics, exporters.

Quick start::

    from repro import telemetry

    with telemetry.session() as tel:
        with tel.span("campaign", label="fig8"):
            run_campaign()
    print(telemetry.summary(tel))

Library code never starts sessions; it asks for the ambient one::

    tel = telemetry.current()          # NULL_TELEMETRY when inactive
    with tel.span("solve", tau=task.tau):
        ...
    if tel.active:
        tel.metrics.counter("cache.hit").inc(label="model")

See :mod:`repro.telemetry.schema` for the declared names (checked by
repro-lint RL003), :mod:`repro.telemetry.core` for the tracer and the
worker merge protocol, and :mod:`repro.telemetry.export` for the JSONL
/ Chrome-trace / summary exporters.
"""

from repro.telemetry.clock import Clock, VirtualClock, WallClock
from repro.telemetry.core import (Counter, Gauge, Histogram, Metrics,
                                  NULL_TELEMETRY, NullTelemetry, Span,
                                  SpanHandle, Telemetry, current,
                                  session, start, stop)
from repro.telemetry.export import (TelemetryJsonlWriter,
                                    export_chrome_trace,
                                    read_telemetry_jsonl, summary,
                                    validate_telemetry_jsonl)
from repro.telemetry.schema import TELEMETRY_SCHEMA

__all__ = [
    "Clock", "VirtualClock", "WallClock",
    "Counter", "Gauge", "Histogram", "Metrics",
    "NULL_TELEMETRY", "NullTelemetry", "Span", "SpanHandle",
    "Telemetry", "current", "session", "start", "stop",
    "TelemetryJsonlWriter", "export_chrome_trace",
    "read_telemetry_jsonl", "summary", "validate_telemetry_jsonl",
    "TELEMETRY_SCHEMA",
]
