"""TCP SACK sender (RFC 2018/6675-style, simplified).

The receiver reports received out-of-order ranges on every ACK (see
:class:`repro.tcp.receiver.TcpReceiver` with ``sack_enabled``); the
sender keeps a scoreboard and, during recovery, retransmits exactly
the holes instead of guessing — at most one hole per incoming ACK
(a simplified pipe rule), falling back to new data when no hole is
outstanding.  One window halving per recovery episode, like NewReno,
but multi-loss recovery no longer costs one RTT per hole.
"""

from __future__ import annotations

from typing import Set

from repro.sim.packet import Packet
from repro.tcp.reno import RenoSender


class SackSender(RenoSender):
    """Reno with selective-acknowledgement loss recovery."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._sacked: Set[int] = set()
        self._rtx_done: Set[int] = set()

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.is_ack and isinstance(packet.payload, tuple):
            for block in packet.payload:
                try:
                    start, end = block
                except (TypeError, ValueError):
                    continue
                self._sacked.update(range(start, end))
        super().handle_packet(packet)

    # ------------------------------------------------------------------
    def _holes(self) -> list:
        """Unsacked, unretransmitted segments below the highest SACK."""
        if not self._sacked:
            return []
        top = max(self._sacked)
        return [seq for seq in range(self.snd_una, top)
                if seq not in self._sacked
                and seq not in self._rtx_done]

    def _retransmit_next_hole(self) -> bool:
        for seq in self._holes():
            if seq - self.snd_una < len(self._buffer):
                self._transmit(seq, retransmit=True)
                self._rtx_done.add(seq)
                return True
        return False

    # ------------------------------------------------------------------
    def _handle_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.in_fast_recovery:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)
            self._emit_cwnd()
            if not self._retransmit_next_hole():
                self._try_send()
            return
        if self.dup_acks == 3:
            self.fast_retransmits += 1
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True
            self.recover = self.snd_nxt
            self._timed_seq = None
            self._rtx_done = set()
            if self._p_fast_rtx.active:
                self._p_fast_rtx.emit(self.sim.now, self.name,
                                      self.snd_una)
            self._emit_cwnd()
            if not self._retransmit_next_hole():
                self._transmit(self.snd_una, retransmit=True)
                self._rtx_done.add(self.snd_una)
            self._arm_rto(restart=True)

    def _new_ack_in_recovery(self, ack: int, acked: int) -> None:
        if ack > self.recover:
            self.cwnd = self.ssthresh
            self.in_fast_recovery = False
            self.dup_acks = 0
            self._rtx_done.clear()
            return
        # Partial ACK: walk the scoreboard, stay in recovery.
        self.cwnd = max(self.ssthresh, self.cwnd - acked + 1.0)
        if not self._retransmit_next_hole():
            if self._buffer:
                self._transmit(self.snd_una, retransmit=True)
                self._rtx_done.add(self.snd_una)
        self._arm_rto(restart=True)

    def _handle_new_ack(self, ack: int) -> None:
        # Drop scoreboard state below the new cumulative ACK.
        self._sacked = {seq for seq in self._sacked if seq >= ack}
        self._rtx_done = {seq for seq in self._rtx_done if seq >= ack}
        super()._handle_new_ack(ack)

    def _on_timeout(self) -> None:
        self._sacked.clear()
        self._rtx_done.clear()
        super()._on_timeout()
