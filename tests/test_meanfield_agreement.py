"""Pinned agreement: mean-field backend vs the packet simulator.

The mean-field backend only earns the right to extrapolate to N=10^6
sessions if it matches :class:`repro.core.campaign.MultiSessionCampaign`
where the packet sim is still affordable.  This suite pins the
population *mean* late fraction at N = 10, 100 and 1000 sessions, for
both disciplines with a fluid drop profile (drop-tail and RED), at a
congested (ratio 0.75) and a provisioned (ratio 1.6) operating point,
plus one point with persistent background flows.

Operating envelope (chosen deliberately; see docs/performance.md):

* shallow buffer (2 packets/session) and 40 ms propagation — deep
  buffers push drop-tail into global synchronization, which worsens
  with N and violates the propagation-of-chaos assumption behind the
  limit (the McDonald-Reynier theorem is a RED result; drop-tail is
  the hard-limit case and agrees only away from synchrony);
* clearly congested or clearly provisioned ratios — near-critical
  ratios (~0.9) are hypersensitive to timeout overhead and do not
  discriminate between backends.

The pinned bands are absolute (documented here rather than derived
from pooled stderr, because a single seeded campaign per point keeps
the suite deterministic): at the congested point the mean-field is
conservative at small tau (``0 <= mf - sim <= 0.20`` at tau=3) and
slightly optimistic at large tau (``-0.10 <= mf - sim <= 0.05`` at
tau=8); provisioned and background points must agree within 0.02.
Observed diffs sit well inside these bands (tau=3: +0.05..+0.14,
tau=8: -0.06..-0.02).
"""

import functools

import pytest

from repro.core.campaign import MultiSessionCampaign
from repro.model.meanfield import MeanFieldSpec, solve_meanfield
from repro.sim.topology import BottleneckSpec

MU = 10.0
PATHS = 2
DELAY_S = 0.04
BUFFER_PER_SESSION = 2.0
DURATION_S = 30.0
WARMUP_S = 20.0
DRAIN_S = 40.0
BASE_RTT_S = 2.0 * (2.0 * 0.010 + DELAY_S)  # fan-in access hops

CONGESTED = 0.75
PROVISIONED = 1.6

# Pinned absolute bands on (mean-field - sim), per tau (see module
# docstring for the rationale).
CONGESTED_BANDS = {3.0: (0.0, 0.20), 8.0: (-0.10, 0.05)}
PROVISIONED_TOLERANCE = 0.02


@functools.lru_cache(maxsize=None)
def packet_mean(n_sessions, ratio, discipline, n_ftp, tau):
    """Population mean late fraction from one seeded packet campaign.

    The campaign is cached per operating point, so every tau of every
    test reuses the same (expensive) N=1000 run.
    """
    result = _campaign_result(n_sessions, ratio, discipline, n_ftp)
    return result.population(tau)["mean"]


@functools.lru_cache(maxsize=None)
def _campaign_result(n_sessions, ratio, discipline, n_ftp):
    bandwidth_pps = ratio * MU * n_sessions
    campaign = MultiSessionCampaign(
        mu=MU, duration_s=DURATION_S, n_sessions=n_sessions,
        bottleneck=BottleneckSpec(
            bandwidth_bps=bandwidth_pps * 1500 * 8,
            delay_s=DELAY_S,
            buffer_pkts=int(round(BUFFER_PER_SESSION * n_sessions))),
        paths_per_session=PATHS, queue_discipline=discipline,
        seed=7, stagger_s=5.0 / n_sessions, warmup_s=WARMUP_S,
        n_ftp=n_ftp, service_batch=8)
    return campaign.run(drain_s=DRAIN_S)


@functools.lru_cache(maxsize=None)
def meanfield_solution(n_sessions, ratio, discipline, n_ftp):
    return solve_meanfield(MeanFieldSpec(
        n_sessions=n_sessions, mu=MU,
        bandwidth_pps=ratio * MU * n_sessions,
        buffer_pkts=BUFFER_PER_SESSION * n_sessions,
        queue_discipline=discipline, paths_per_session=PATHS,
        n_background=n_ftp, base_rtt_s=BASE_RTT_S,
        duration_s=DURATION_S, warmup_s=WARMUP_S, drain_s=DRAIN_S))


DISCIPLINES = ("droptail", "red")
SMALL_NS = (10, 100)


@pytest.mark.parametrize("discipline", DISCIPLINES)
@pytest.mark.parametrize("n_sessions", SMALL_NS + (1000,))
@pytest.mark.parametrize("tau", sorted(CONGESTED_BANDS))
def test_congested_agreement(n_sessions, discipline, tau):
    sim = packet_mean(n_sessions, CONGESTED, discipline, 0, tau)
    mf = meanfield_solution(
        n_sessions, CONGESTED, discipline, 0).late_fraction(tau)
    # The point must actually be congested — otherwise the band is
    # trivially satisfied and pins nothing.
    assert sim > 0.1 and mf > 0.1, (sim, mf)
    lo, hi = CONGESTED_BANDS[tau]
    assert lo <= mf - sim <= hi, (
        f"N={n_sessions} {discipline} tau={tau}: "
        f"sim={sim:.4f} meanfield={mf:.4f} diff={mf - sim:+.4f} "
        f"outside [{lo:+.2f}, {hi:+.2f}]")


@pytest.mark.parametrize("discipline", DISCIPLINES)
@pytest.mark.parametrize("n_sessions", SMALL_NS)
@pytest.mark.parametrize("tau", (3.0, 8.0))
def test_provisioned_agreement(n_sessions, discipline, tau):
    sim = packet_mean(n_sessions, PROVISIONED, discipline, 0, tau)
    mf = meanfield_solution(
        n_sessions, PROVISIONED, discipline, 0).late_fraction(tau)
    assert mf == 0.0
    assert abs(mf - sim) <= PROVISIONED_TOLERANCE, (sim, mf)


@pytest.mark.parametrize("tau", (3.0, 8.0))
def test_background_load_agreement(tau):
    """Provisioned point with 10 persistent FTP flows riding along."""
    sim = packet_mean(100, PROVISIONED, "droptail", 10, tau)
    mf = meanfield_solution(
        100, PROVISIONED, "droptail", 10).late_fraction(tau)
    assert abs(mf - sim) <= PROVISIONED_TOLERANCE, (sim, mf)


def test_meanfield_is_n_invariant_where_sim_is_not_affordable():
    """The same solve extends to N=10^6 with identical output."""
    small = meanfield_solution(1000, CONGESTED, "red", 0)
    huge = solve_meanfield(MeanFieldSpec(
        n_sessions=1_024_000, mu=MU,
        bandwidth_pps=CONGESTED * MU * 1_024_000,
        buffer_pkts=BUFFER_PER_SESSION * 1_024_000,
        queue_discipline="red", paths_per_session=PATHS,
        base_rtt_s=BASE_RTT_S, duration_s=DURATION_S,
        warmup_s=WARMUP_S, drain_s=DRAIN_S))
    for tau in sorted(CONGESTED_BANDS):
        assert small.late_fraction(tau) == huge.late_fraction(tau)
