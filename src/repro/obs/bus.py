"""The instrumentation bus: typed probe points with pluggable sinks.

Every layer of the simulator declares *probe points* — named, typed
event streams such as ``link.drop`` or ``tcp.cwnd`` — on the
:class:`EventBus` owned by its :class:`~repro.sim.engine.Simulator`.
Sinks subscribe by topic (exact name, ``"link.*"`` prefix, or ``"*"``)
and receive ``(topic, time, values)`` triples.

The contract that makes instrumentation free in production runs:
emission sites guard on the probe's ``active`` flag::

    if self._p_drop.active:
        self._p_drop.emit(self.sim.now, self.name, packet, len(queue))

With no subscriber the guard is one attribute load of a plain bool
(``__bool__`` would be a Python-level call — measurably slower at
millions of emission sites per run) and ``emit`` is never entered, so
a run without sinks pays (almost) nothing.  Emission *order* at equal simulated time follows call order,
which is deterministic for a fixed seed — sinks therefore see a
reproducible event stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Protocol, Sequence, Tuple

#: Registry of every probe point in the simulator: topic -> field names
#: (the values tuple each emission carries, after the leading time).
#: ``bus.probe(topic)`` refuses topics not declared here, so the set of
#: probe points — and their schemas — stays discoverable in one place.
SCHEMA: Dict[str, Tuple[str, ...]] = {
    # engine
    "engine.event": ("pending",),
    "engine.compact": ("removed", "pending"),
    # links / queues
    "link.enqueue": ("link", "packet", "qlen"),
    "link.drop": ("link", "packet", "qlen"),
    "link.send": ("link", "packet"),
    "link.recv": ("link", "packet"),
    # AQM (PIE family): controller ticks and early (non-overflow) drops
    "queue.pie.prob_update": ("queue", "prob", "qdelay", "burst"),
    "queue.pie.drop": ("queue", "prob", "qlen"),
    # TCP senders
    "tcp.cwnd": ("flow", "cwnd", "ssthresh"),
    "tcp.timeout": ("flow", "rto", "backoff"),
    "tcp.fast_retransmit": ("flow", "seq"),
    "tcp.retransmit": ("flow", "seq"),
    "tcp.rtt_sample": ("flow", "rtt"),
    "tcp.send_buffer": ("flow", "buffered"),
    # server side
    "server_queue.push": ("depth",),
    "server_queue.fetch": ("flow", "depth"),
    "source.generate": ("number",),
    "streamer.assign": ("path", "number"),
    # client side
    "client.arrival": ("path", "number"),
    "client.buffer": ("level",),
    # multi-session campaigns: one event per session at the instant
    # its video ends (received = packets delivered by then)
    "campaign.session_done": ("session", "received", "total"),
    # campaign health layer (repro.obs.health / repro.obs.recorder):
    # a session's freeze-resume playout clock starved for ``duration``
    # seconds, and a flight-recorder trigger freezing a ring
    "health.stall": ("session", "duration", "rebuffers"),
    "health.trigger": ("session", "kind", "value"),
}

Subscriber = Callable[[str, float, Tuple[Any, ...]], None]


class Sink(Protocol):
    """A subscriber object that declares its own topic patterns.

    Anything passed to :meth:`EventBus.attach` must expose ``patterns``
    (a sequence of subscription patterns) and be callable with the
    usual ``(topic, time, values)`` triple.
    """

    @property
    def patterns(self) -> Sequence[str]: ...

    def __call__(self, topic: str, time: float,
                 values: Tuple[Any, ...]) -> None: ...


class Probe:
    """One typed probe point.

    A probe is shared by every emitter of its topic on one bus.
    ``active`` is True exactly while something is subscribed; emitters
    guard on it (a plain attribute load, not a method call — measured
    to matter at millions of emission sites per run).  Truthiness
    mirrors ``active`` for convenience.  ``emissions`` counts actual
    ``emit`` calls (i.e. events that at least one sink observed).
    """

    __slots__ = ("topic", "fields", "subscribers", "emissions",
                 "active")

    def __init__(self, topic: str, fields: Tuple[str, ...]) -> None:
        self.topic = topic
        self.fields = fields
        self.subscribers: List[Subscriber] = []
        self.emissions = 0
        self.active = False

    def __bool__(self) -> bool:
        return self.active

    def emit(self, time: float, *values: Any) -> None:
        """Deliver one event to every subscriber, in subscribe order."""
        self.emissions += 1
        for subscriber in self.subscribers:
            subscriber(self.topic, time, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Probe {self.topic}{self.fields} "
                f"subs={len(self.subscribers)}>")


#: A permanently inactive probe, for components constructed without a
#: simulator (``sim=None``): emission guards stay a plain
#: ``probe.active`` load with no None-check.
NULL_PROBE = Probe("null", ())


def _matches(pattern: str, topic: str) -> bool:
    if pattern == "*":
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1]) or topic == pattern[:-2]
    return topic == pattern


class EventBus:
    """Probe registry + subscription fabric for one simulator.

    Probes are created lazily by the components that emit them;
    subscriptions may happen before or after the emitters exist (a
    pattern is kept and applied to probes declared later).
    """

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}
        self._patterns: List[Tuple[str, Subscriber]] = []

    # -- probe side ----------------------------------------------------
    def probe(self, topic: str) -> Probe:
        """The (shared) probe for ``topic``; must be in :data:`SCHEMA`."""
        existing = self._probes.get(topic)
        if existing is not None:
            return existing
        try:
            fields = SCHEMA[topic]
        except KeyError:
            raise ValueError(
                f"unknown probe topic {topic!r}; declare it in "
                "repro.obs.bus.SCHEMA") from None
        probe = Probe(topic, fields)
        for pattern, subscriber in self._patterns:
            if _matches(pattern, topic):
                probe.subscribers.append(subscriber)
        probe.active = bool(probe.subscribers)
        self._probes[topic] = probe
        return probe

    def topics(self) -> List[str]:
        """Topics with a declared probe, sorted."""
        return sorted(self._probes)

    def emissions(self) -> Dict[str, int]:
        """Per-topic count of events actually emitted so far."""
        return {topic: probe.emissions
                for topic, probe in sorted(self._probes.items())}

    # -- sink side -----------------------------------------------------
    def subscribe(self, pattern: str, subscriber: Subscriber) -> None:
        """Subscribe to every topic matching ``pattern``.

        ``pattern`` is an exact topic, a ``"prefix.*"`` wildcard, or
        ``"*"`` for everything.  The subscriber is called as
        ``subscriber(topic, time, values)``.
        """
        self._patterns.append((pattern, subscriber))
        for topic, probe in self._probes.items():
            if _matches(pattern, topic) \
                    and subscriber not in probe.subscribers:
                probe.subscribers.append(subscriber)
                probe.active = True

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove ``subscriber`` from every pattern and probe."""
        self._patterns = [(pat, sub) for pat, sub in self._patterns
                          if sub is not subscriber]
        for probe in self._probes.values():
            if subscriber in probe.subscribers:
                probe.subscribers.remove(subscriber)
                probe.active = bool(probe.subscribers)

    def attach(self, sink: Sink) -> None:
        """Subscribe a sink object: uses its ``patterns`` attribute."""
        for pattern in sink.patterns:
            self.subscribe(pattern, sink)

    def detach(self, sink: Sink) -> None:
        self.unsubscribe(sink)

    @property
    def quiet(self) -> bool:
        """True when no probe has any subscriber."""
        return not self._patterns and not any(
            probe.subscribers for probe in self._probes.values())
