"""Unit tests for the packet representation."""

from repro.sim.packet import Packet


def test_uids_unique_and_increasing():
    a = Packet("a", "b", 1, 2, 100)
    b = Packet("a", "b", 1, 2, 100)
    assert b.uid > a.uid


def test_flow_key():
    pkt = Packet("srv", "cli", 10, 20, 1500, seq=5)
    assert pkt.flow_key() == ("srv", 10, "cli", 20)


def test_ack_flag():
    data = Packet("a", "b", 1, 2, 1500)
    ack = Packet("b", "a", 2, 1, 40, ack=3, flags={"ACK"})
    assert not data.is_ack
    assert ack.is_ack
    assert ack.ack == 3


def test_default_fields():
    pkt = Packet("a", "b", 1, 2, 99)
    assert pkt.seq == 0
    assert pkt.ack == -1
    assert pkt.flags == set()
    assert pkt.payload is None
    assert pkt.hops == 0
    assert not pkt.is_retransmit


def test_flags_not_shared_between_instances():
    a = Packet("a", "b", 1, 2, 99)
    b = Packet("a", "b", 1, 2, 99)
    a.flags.add("ACK")
    assert not b.is_ack
