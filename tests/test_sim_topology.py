"""Unit tests for the Fig.-3 and Fig.-6 topology builders."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.topology import (
    BottleneckSpec,
    IndependentPathsTopology,
    SharedBottleneckTopology,
)

SPEC = BottleneckSpec(bandwidth_bps=1e6, delay_s=0.01, buffer_pkts=20)


class Recorder:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


def test_independent_paths_connectivity():
    sim = Simulator()
    topo = IndependentPathsTopology(sim, [SPEC, SPEC])
    assert len(topo.paths) == 2
    for handles in topo.paths:
        sink = Recorder()
        port = handles.client_if.bind(sink)
        topo.server.send(Packet(
            src="server", dst=handles.client_if.name, sport=1,
            dport=port, size=100))
        sim.run()
        assert len(sink.packets) == 1


def test_independent_paths_reverse_connectivity():
    sim = Simulator()
    topo = IndependentPathsTopology(sim, [SPEC, SPEC])
    sink = Recorder()
    port = topo.server.bind(sink)
    for handles in topo.paths:
        handles.client_if.send(Packet(
            src=handles.client_if.name, dst="server", sport=1,
            dport=port, size=40))
    sim.run()
    assert len(sink.packets) == 2


def test_independent_paths_are_disjoint():
    sim = Simulator()
    topo = IndependentPathsTopology(sim, [SPEC, SPEC])
    first, second = topo.paths
    assert first.bottleneck_fwd is not second.bottleneck_fwd
    sink = Recorder()
    port = first.client_if.bind(sink)
    topo.server.send(Packet(
        src="server", dst=first.client_if.name, sport=1, dport=port,
        size=100))
    sim.run()
    assert first.bottleneck_fwd.tx_packets == 1
    assert second.bottleneck_fwd.tx_packets == 0


def test_background_hosts_cross_the_bottleneck():
    sim = Simulator()
    topo = IndependentPathsTopology(sim, [SPEC])
    handles = topo.paths[0]
    sink = Recorder()
    port = handles.bg_sink_host.bind(sink)
    handles.bg_source_host.send(Packet(
        src=handles.bg_source_host.name,
        dst=handles.bg_sink_host.name, sport=1, dport=port, size=100))
    sim.run()
    assert len(sink.packets) == 1
    assert handles.bottleneck_fwd.tx_packets == 1


def test_empty_specs_rejected():
    with pytest.raises(ValueError):
        IndependentPathsTopology(Simulator(), [])


def test_shared_bottleneck_connectivity_and_sharing():
    sim = Simulator()
    topo = SharedBottleneckTopology(sim, SPEC, n_paths=2)
    assert len(topo.paths) == 2
    sink = Recorder()
    port = topo.client.bind(sink)
    topo.server.send(Packet(src="server", dst="client", sport=1,
                            dport=port, size=100))
    sim.run()
    assert len(sink.packets) == 1
    assert topo.bottleneck_fwd.tx_packets == 1
    # Both "paths" expose the same shared bottleneck.
    assert topo.paths[0].bottleneck_fwd is topo.paths[1].bottleneck_fwd


def test_shared_bottleneck_reverse_path():
    sim = Simulator()
    topo = SharedBottleneckTopology(sim, SPEC)
    sink = Recorder()
    port = topo.server.bind(sink)
    topo.client.send(Packet(src="client", dst="server", sport=1,
                            dport=port, size=40))
    sim.run()
    assert len(sink.packets) == 1
    assert topo.bottleneck_rev.tx_packets == 1


def test_bottleneck_buffer_size_respected():
    sim = Simulator()
    spec = BottleneckSpec(bandwidth_bps=8e3, delay_s=0.0,
                          buffer_pkts=2)
    topo = SharedBottleneckTopology(sim, spec)
    sink = Recorder()
    port = topo.client.bind(sink)
    for i in range(10):
        topo.server.send(Packet(src="server", dst="client", sport=1,
                                dport=port, size=1000, seq=i))
    sim.run()
    # One serialising + two buffered survive.
    assert len(sink.packets) == 3
    assert topo.bottleneck_fwd.drops == 7
