"""Event loop for the discrete-event simulator.

The engine is a classic calendar built on a binary heap.  Events are
callbacks scheduled at absolute times; ties are broken by insertion
order so the simulation is fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and may be cancelled before they fire.  A
    cancelled event stays in the heap but is skipped by the event loop.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.callback!r} {state}>"


class Simulator:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random stream.  All stochastic
        components (background traffic, jitter) must draw from
        :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed: Optional[int] = None):
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.rng = random.Random(seed)
        self._processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the horizon ``until`` or the heap drains.

        When ``until`` is given the clock is advanced to exactly
        ``until`` on return, even if the last event fired earlier.
        """
        processed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
            processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None and self.now < until:
            self.now = until

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)
