"""Shared helpers for the experiment-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper at the
active scale profile (``REPRO_SCALE`` in {quick, full, paper}; default
quick) and drops the rendered artefact under ``benchmarks/out/`` so
EXPERIMENTS.md can quote real runs.
"""

import os

import pytest

from repro.experiments import cache as result_cache
from repro.experiments import parallel
from repro.experiments.report import save_output


@pytest.fixture(autouse=True, scope="session")
def parallel_and_cache():
    """Wire the executor and result cache into every benchmark.

    * ``REPRO_WORKERS=N`` fans replications/model solves out over N
      processes (default: serial);
    * the on-disk result cache is ON for benchmarks (a re-run at the
      same scale performs zero new simulations) unless ``REPRO_CACHE=0``;
    * ``REPRO_CACHE_DIR`` relocates the cache (default ~/.cache/repro).
    """
    workers = os.environ.get("REPRO_WORKERS")
    parallel.configure(max_workers=int(workers) if workers else None)
    enabled = os.environ.get("REPRO_CACHE", "1").lower() \
        not in ("0", "", "false", "no")
    result_cache.configure(enabled=enabled)
    yield
    parallel.configure(max_workers=None)
    result_cache.configure(enabled=None)


@pytest.fixture
def artifact(capsys):
    """Return a callback that prints and persists a rendered table."""

    def _emit(name: str, text: str) -> None:
        path = save_output(name, text)
        with capsys.disabled():
            print(f"\n{text}[saved to {path}]")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
