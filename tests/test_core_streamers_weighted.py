"""Property tests for the static streamer's weighted routing."""

from hypothesis import given, settings, strategies as st

from repro.core.packets import VideoPacket
from repro.core.streamers import StaticStreamer
from repro.sim.engine import Simulator
from repro.sim.link import duplex_link
from repro.sim.node import Node
from repro.tcp.socket import TcpConnection


def build_static(weights):
    sim = Simulator(seed=0)
    server = Node(sim, "server")
    connections = []
    for k in range(len(weights)):
        client_if = Node(sim, f"c{k}")
        duplex_link(sim, server, client_if, 1e9, 0.001,
                    queue_limit_pkts=10000)
        connections.append(TcpConnection(
            sim, server, client_if, send_buffer_pkts=100000))
    return StaticStreamer(sim, connections, weights=weights)


@settings(max_examples=30, deadline=None)
@given(weights=st.lists(st.integers(min_value=1, max_value=9),
                        min_size=2, max_size=4),
       total=st.integers(min_value=1, max_value=400))
def test_deficit_round_robin_tracks_weights(weights, total):
    """After N assignments, each path holds its weighted share +-1."""
    streamer = build_static(weights)
    for i in range(total):
        streamer._on_generate(VideoPacket(i, float(i)))
    weight_sum = sum(weights)
    for assigned, weight in zip(streamer.assigned_per_path, weights):
        expected = total * weight / weight_sum
        assert abs(assigned - expected) <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(weights=st.lists(st.integers(min_value=1, max_value=5),
                        min_size=2, max_size=3))
def test_assignment_conserves_packets(weights):
    streamer = build_static(weights)
    for i in range(100):
        streamer._on_generate(VideoPacket(i, float(i)))
    assert sum(streamer.assigned_per_path) == 100
