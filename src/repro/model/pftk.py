"""The PFTK steady-state TCP throughput formula (Padhye et al. [24]).

Used exactly where the paper uses it: Section 7.2, Case 2, sets the
second heterogeneous path's loss rate so the aggregate achievable
throughput matches the homogeneous scenario — that requires inverting
the throughput formula in ``p``.
"""

from __future__ import annotations

import math


def pftk_throughput(p: float, rtt: float, rto: float, b: int = 2,
                    wmax: float = float("inf")) -> float:
    """Achievable TCP throughput in packets/second.

    The full PFTK approximation (eq. (30) of [24]) with delayed-ACK
    factor ``b`` and an optional maximum window ``wmax``.

    Parameters
    ----------
    p:
        Loss event probability (0 < p < 1).
    rtt:
        Round-trip time in seconds.
    rto:
        Retransmission timeout in seconds (the paper's ``T_O * R``).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1): {p}")
    if rtt <= 0 or rto <= 0:
        raise ValueError("rtt and rto must be positive")
    if b < 1:
        raise ValueError("delayed-ACK factor b must be >= 1")

    wp = math.sqrt(2.0 * b * p / 3.0)
    q = min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0))
    f = 1.0 + 32.0 * p * p
    denominator = rtt * wp + rto * q * p * f
    rate = 1.0 / denominator

    if math.isfinite(wmax):
        # Window-limited regime: cannot exceed wmax per RTT.
        rate = min(rate, wmax / rtt)
    return rate


def invert_loss_for_throughput(target: float, rtt: float,
                               to_ratio: float, b: int = 2,
                               wmax: float = float("inf"),
                               p_lo: float = 1e-6,
                               p_hi: float = 0.9,
                               tol: float = 1e-10) -> float:
    """Loss rate p such that ``pftk_throughput(p, ...) == target``.

    ``to_ratio`` is the paper's dimensionless ``T_O = RTO/RTT``.  The
    formula is strictly decreasing in ``p`` (for fixed everything
    else), so bisection converges; raises ValueError when the target is
    unreachable within ``[p_lo, p_hi]``.
    """
    if target <= 0:
        raise ValueError("target throughput must be positive")
    rto = to_ratio * rtt

    def gap(p: float) -> float:
        return pftk_throughput(p, rtt, rto, b=b, wmax=wmax) - target

    lo, hi = p_lo, p_hi
    if gap(lo) < 0:
        raise ValueError(
            f"target {target} pkts/s unreachable even at p={lo}")
    if gap(hi) > 0:
        raise ValueError(
            f"target {target} pkts/s exceeded even at p={hi}")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
