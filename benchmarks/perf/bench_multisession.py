"""Multi-session campaign benchmark: events/sec vs session count.

Runs one staggered-start campaign per session count N over a shared
drop-tail bottleneck (packet pool and batched link service on — the
configuration campaigns run with) and reports the engine event rate
at each N.  The shape of this curve is the multi-session refactor's
deliverable: per-event cost must stay roughly flat as N grows, i.e.
events/sec at N=200 must hold within 3x of the N=10 rate
(``tools/perf_track`` gates exactly that, within one report, on any
machine).

The N=1000 point doubles as a PacketPool/service-batch audit at the
largest population the packet sim still affords: each point carries
the pool counters, and perf_track gates that at N=1000 the pool
actually recycles (reuse fraction >= 0.5) rather than degenerating
into straight allocation.
"""

from __future__ import annotations

import time

from repro.core.campaign import MultiSessionCampaign
from repro.sim.topology import BottleneckSpec

SESSION_COUNTS = (1, 10, 50, 200, 1000)
MU = 25.0
SEED = 1
WARMUP_S = 5.0
STAGGER_S = 0.05
SERVICE_BATCH = 8

#: 50 Mbps shared bottleneck: ~60 Mbps of offered video load at
#: N=200 (2 paths x 25 pkt/s x 1500 B each), so the largest point
#: runs congested — the regime campaigns exist to measure.
SPEC = BottleneckSpec(bandwidth_bps=50e6, delay_s=0.01,
                      buffer_pkts=250)

MODES = {
    "quick": {"duration_s": 8.0},
    "full": {"duration_s": 20.0},
}


def run(mode: str) -> dict:
    duration_s = MODES[mode]["duration_s"]
    points = []
    by_n = {}
    for n_sessions in SESSION_COUNTS:
        campaign = MultiSessionCampaign(
            mu=MU, duration_s=duration_s, n_sessions=n_sessions,
            bottleneck=SPEC, paths_per_session=2,
            queue_discipline="droptail", seed=SEED,
            stagger_s=STAGGER_S, warmup_s=WARMUP_S,
            service_batch=SERVICE_BATCH)
        started = time.perf_counter()
        result = campaign.run(drain_s=10.0)
        elapsed = time.perf_counter() - started
        events = result.events_processed
        delivered = sum(s.received for s in result.sessions)
        total = sum(s.total_packets for s in result.sessions)
        rate = events / elapsed
        pool = campaign.sim.pool
        points.append({
            "n_sessions": n_sessions,
            "events": events,
            "seconds": elapsed,
            "events_per_second": rate,
            "delivered_packets": delivered,
            "total_packets": total,
            "pool": {
                "allocated": pool.allocated,
                "acquired": pool.acquired,
                "recycled": pool.recycled,
                "released": pool.released,
                "free": pool.free,
                "reuse_fraction": (pool.recycled / pool.acquired
                                   if pool.acquired else 0.0),
            },
        })
        by_n[str(n_sessions)] = rate
    return {
        "config": {"mu": MU, "seed": SEED, "duration_s": duration_s,
                   "counts": list(SESSION_COUNTS),
                   "service_batch": SERVICE_BATCH,
                   "queue_discipline": "droptail"},
        "points": points,
        "events_per_second_by_n": by_n,
    }
