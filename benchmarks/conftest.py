"""Shared helpers for the experiment-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper at the
active scale profile (``REPRO_SCALE`` in {quick, full, paper}; default
quick) and drops the rendered artefact under ``benchmarks/out/`` so
EXPERIMENTS.md can quote real runs.
"""

import pytest

from repro.experiments.report import save_output


@pytest.fixture
def artifact(capsys):
    """Return a callback that prints and persists a rendered table."""

    def _emit(name: str, text: str) -> None:
        path = save_output(name, text)
        with capsys.disabled():
            print(f"\n{text}[saved to {path}]")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
