"""Unit tests for node routing and agent demultiplexing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link, duplex_link
from repro.sim.node import Node
from repro.sim.packet import Packet


class Recorder:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


def test_local_delivery_to_bound_port():
    sim = Simulator()
    node = Node(sim, "n")
    agent = Recorder()
    port = node.bind(agent)
    node.receive(Packet(src="x", dst="n", sport=1, dport=port,
                        size=40))
    assert len(agent.packets) == 1
    assert node.delivered == 1


def test_unbound_port_is_dead_letter():
    sim = Simulator()
    node = Node(sim, "n")
    node.receive(Packet(src="x", dst="n", sport=1, dport=99, size=40))
    assert node.dead_letters == 1


def test_forwarding_via_route():
    sim = Simulator()
    r = Node(sim, "r")
    dst = Node(sim, "dst")
    link = Link(sim, r, dst, 1e9, 0.0)
    r.add_route("dst", link)
    agent = Recorder()
    dst.bind(agent, port=7)
    r.receive(Packet(src="x", dst="dst", sport=1, dport=7, size=40))
    sim.run()
    assert len(agent.packets) == 1
    assert r.forwarded == 1


def test_missing_route_is_dead_letter():
    sim = Simulator()
    r = Node(sim, "r")
    r.receive(Packet(src="x", dst="elsewhere", sport=1, dport=1,
                     size=40))
    assert r.dead_letters == 1


def test_send_loopback():
    sim = Simulator()
    node = Node(sim, "n")
    agent = Recorder()
    port = node.bind(agent)
    node.send(Packet(src="n", dst="n", sport=1, dport=port, size=40))
    assert len(agent.packets) == 1


def test_route_must_originate_here():
    sim = Simulator()
    a = Node(sim, "a")
    b = Node(sim, "b")
    c = Node(sim, "c")
    link_bc = Link(sim, b, c, 1e6, 0.0)
    with pytest.raises(ValueError):
        a.add_route("c", link_bc)


def test_bind_duplicate_port_rejected():
    sim = Simulator()
    node = Node(sim, "n")
    node.bind(Recorder(), port=3)
    with pytest.raises(ValueError):
        node.bind(Recorder(), port=3)


def test_auto_port_allocation_unique():
    sim = Simulator()
    node = Node(sim, "n")
    ports = {node.bind(Recorder()) for _ in range(10)}
    assert len(ports) == 10


def test_unbind_frees_port():
    sim = Simulator()
    node = Node(sim, "n")
    node.bind(Recorder(), port=4)
    node.unbind(4)
    node.bind(Recorder(), port=4)  # no error


def test_multi_hop_forwarding():
    sim = Simulator()
    a = Node(sim, "a")
    r1 = Node(sim, "r1")
    r2 = Node(sim, "r2")
    b = Node(sim, "b")
    duplex_link(sim, a, r1, 1e9, 0.001)
    duplex_link(sim, r1, r2, 1e9, 0.001)
    duplex_link(sim, r2, b, 1e9, 0.001)
    a.add_route("b", a.route_for("r1"))
    r1.add_route("b", r1.route_for("r2"))
    r2.add_route("b", r2.route_for("b"))
    agent = Recorder()
    b.bind(agent, port=9)
    a.send(Packet(src="a", dst="b", sport=1, dport=9, size=100))
    sim.run()
    assert len(agent.packets) == 1
    assert agent.packets[0].hops == 3
