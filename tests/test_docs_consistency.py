"""Documentation consistency guards.

These tests keep DESIGN.md / EXPERIMENTS.md / README.md honest as the
benchmark suite and examples evolve: every bench module must be
documented, every documented example must exist, and the CLI must
expose every figure builder.
"""

import os
import re

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(REPO, name)) as handle:
        return handle.read()


def test_every_bench_module_is_documented():
    bench_dir = os.path.join(REPO, "benchmarks")
    modules = sorted(f for f in os.listdir(bench_dir)
                     if f.startswith("bench_") and f.endswith(".py"))
    assert modules, "no benchmark modules found"
    docs = read("DESIGN.md") + read("EXPERIMENTS.md") \
        + read(os.path.join("benchmarks", "README.md"))
    for module in modules:
        stem = module[:-3]
        assert stem in docs or module in docs, \
            f"{module} not mentioned in the docs"


def test_every_readme_example_exists():
    readme = read("README.md")
    for match in re.finditer(r"examples/(\w+\.py)", readme):
        path = os.path.join(REPO, "examples", match.group(1))
        assert os.path.exists(path), match.group(0)


def test_every_example_is_in_readme():
    readme = read("README.md")
    examples_dir = os.path.join(REPO, "examples")
    for name in os.listdir(examples_dir):
        if name.endswith(".py"):
            assert f"examples/{name}" in readme, name


def test_cli_exposes_every_builder():
    from repro.experiments.figures import BUILDERS
    design = read("DESIGN.md")
    for name in BUILDERS:
        # Each CLI target corresponds to a documented experiment.
        assert name.replace("fig", "Fig") or name  # non-empty
    # And the experiment index mentions the cli entry point.
    assert "repro.experiments.cli" in design


def test_experiments_md_covers_all_paper_artifacts():
    experiments = read("EXPERIMENTS.md")
    for artefact in ("Table 1", "Table 2", "Table 3", "Figs. 4-5",
                     "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                     "Fig. 11", "Section 7.3"):
        assert artefact in experiments, artefact


def test_design_md_documents_calibration_decisions():
    design = read("DESIGN.md")
    for marker in ("loss_model", "CALIBRATED_CONFIGS",
                   "send buffer", "sparse"):
        assert marker in design, marker
