#!/usr/bin/env python
"""Dual-ISP home: can two cheap ADSL lines replace one fat link?

The paper's introduction asks two questions (Section 1):

  (i)  if one access link supports a video, can two links with HALF
       the throughput each support the same video?
  (ii) if one access link supports a video, can two SUCH links
       support a video with TWICE the bitrate?

This example answers both with the analytical model, exactly as the
paper does: single-path streaming needs sigma/mu ~ 2 [31], while
DMP-streaming needs only sigma_a/mu ~ 1.6, so the answer to both
questions is *yes* — with margin to spare.

Run:  python examples/dual_isp_home.py
"""

from repro.model import DmpModel, FlowParams, SinglePathModel

# One ADSL-ish path: 2% loss events, 100 ms RTT, T_O = 2.
ADSL = FlowParams(p=0.02, rtt=0.100, to_ratio=2.0)
TAU = 10.0          # startup delay users tolerate
TARGET = 1e-4       # satisfactory late fraction (Section 7.1)

sigma = SinglePathModel(ADSL, mu=1.0, tau=1.0).aggregate_throughput()
print(f"One ADSL line: achievable TCP throughput = "
      f"{sigma:.1f} pkts/s ({sigma * 1500 * 8 / 1e6:.2f} Mbps)\n")


def verdict(late: float) -> str:
    return ("satisfactory" if late < TARGET
            else f"NOT satisfactory (f={late:.2e})")


# ----------------------------------------------------------------------
# Baseline: a single line at the single-path rule sigma/mu = 2.
# ----------------------------------------------------------------------
mu_single = sigma / 2.0
single = SinglePathModel(ADSL, mu=mu_single, tau=TAU)
f_single = single.late_fraction_mc(horizon_s=30000,
                                   seed=1).late_fraction
print(f"Single line, video at mu = {mu_single:.1f} pkts/s "
      f"(sigma/mu = 2.0): {verdict(f_single)}")

# ----------------------------------------------------------------------
# Question (i): two half-throughput lines, same video.
# Half the throughput = double the RTT (same loss process).
# ----------------------------------------------------------------------
half_line = ADSL.scaled_rtt(ADSL.rtt * 2.0)
two_halves = DmpModel([half_line, half_line], mu=mu_single, tau=TAU)
print(f"\nQuestion (i): two lines at half throughput each, same "
      f"video (sigma_a/mu = {two_halves.throughput_ratio:.2f})")
f_i = two_halves.late_fraction_mc(horizon_s=30000,
                                  seed=1).late_fraction
print(f"  -> {verdict(f_i)}")

# ----------------------------------------------------------------------
# Question (ii): two full lines, double-bitrate video.
# ----------------------------------------------------------------------
mu_double = 2.0 * mu_single
two_full = DmpModel([ADSL, ADSL], mu=mu_double, tau=TAU)
print(f"\nQuestion (ii): two full lines, video at mu = "
      f"{mu_double:.1f} pkts/s (sigma_a/mu = "
      f"{two_full.throughput_ratio:.2f})")
f_ii = two_full.late_fraction_mc(horizon_s=30000, seed=1).late_fraction
print(f"  -> {verdict(f_ii)}")

# ----------------------------------------------------------------------
# And the margin: push mu up until DMP breaks.  A 3 s startup delay
# (impatient viewer) makes the trade-off visible: the margin shrinks
# as the bitrate approaches the aggregate throughput.
# ----------------------------------------------------------------------
impatient_tau = 3.0
print(f"\nHow far can two full lines be pushed "
      f"(startup delay {impatient_tau:.0f} s)?")
for ratio in (2.0, 1.8, 1.6, 1.4, 1.2):
    mu = 2.0 * sigma / ratio
    model = DmpModel([ADSL, ADSL], mu=mu, tau=impatient_tau)
    f = model.late_fraction_mc(horizon_s=30000, seed=1).late_fraction
    print(f"  sigma_a/mu = {ratio:.1f}  (mu = {mu:5.1f} pkts/s): "
          f"late fraction {f:.2e}  [{verdict(f)}]")
print("\nConclusion: both answers are yes — two ADSL lines with "
      "DMP-streaming support 2x-and-more the single-line bitrate.")
