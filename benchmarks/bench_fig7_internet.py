"""Fig. 7 — model validation on emulated wide-area (Internet) paths.

The paper's PlanetLab campaign, emulated (see DESIGN.md): 10
experiments; parameters estimated from each run and fed to the model.
Acceptance: points inside the paper's 10x band.

(Thin wrapper; the builder lives in repro.experiments.figures so the
CLI runner can regenerate the same artefact.)
"""

from conftest import run_once

from repro.experiments.figures import build_fig7


def test_fig7(benchmark, artifact):
    text = run_once(benchmark, build_fig7)
    artifact("fig7_internet.txt", text)
    assert "Fig 7(b)" in text
