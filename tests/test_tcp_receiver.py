"""Unit tests for the delayed-ACK receiver."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.tcp.receiver import TcpReceiver

from tests.tcp_harness import TcpPair


class AckCollector:
    def __init__(self):
        self.acks = []

    def handle_packet(self, packet):
        if packet.is_ack:
            self.acks.append(packet.ack)


def build_receiver(delack_interval=0.1):
    sim = Simulator()
    sender_node = Node(sim, "s")
    receiver_node = Node(sim, "r")
    collector = AckCollector()
    sender_port = sender_node.bind(collector)

    delivered = []
    receiver = TcpReceiver(
        sim, receiver_node, delack_interval=delack_interval,
        on_deliver=lambda payload, seq, t: delivered.append(seq))

    def send_data(seq):
        receiver.handle_packet(Packet(
            src="s", dst="r", sport=sender_port, dport=receiver.port,
            size=1500, seq=seq))

    # ACKs are emitted via receiver_node.send -> route to "s".
    class DirectWire:
        def __init__(self, src):
            self.src = src

        def enqueue(self, packet):
            sim.schedule(0.0, sender_node.receive, packet)

    receiver_node.add_route("s", DirectWire(receiver_node))
    return sim, receiver, collector, delivered, send_data


def test_in_order_delivery():
    sim, receiver, collector, delivered, send = build_receiver()
    for seq in range(4):
        send(seq)
    sim.run()
    assert delivered == [0, 1, 2, 3]
    assert receiver.rcv_nxt == 4


def test_ack_every_second_segment():
    sim, receiver, collector, delivered, send = build_receiver()
    for seq in range(4):
        send(seq)
    sim.run()
    # Two cumulative ACKs (after segments 1 and 3), no timer needed.
    assert collector.acks == [2, 4]


def test_delayed_ack_timer_fires_for_odd_segment():
    sim, receiver, collector, delivered, send = build_receiver(
        delack_interval=0.1)
    send(0)
    sim.run()
    assert collector.acks == [1]
    assert sim.now == pytest.approx(0.1)  # the delack timer


def test_out_of_order_triggers_immediate_dup_ack():
    sim, receiver, collector, delivered, send = build_receiver()
    send(0)
    send(1)   # cumulative ACK 2
    send(3)   # gap -> immediate dup ACK 2
    send(4)   # still gapped -> dup ACK 2
    sim.run()
    assert collector.acks[:2] == [2, 2] or collector.acks == [2, 2, 2]
    assert delivered == [0, 1]
    assert receiver.out_of_order == 2


def test_gap_fill_delivers_buffered_run():
    sim, receiver, collector, delivered, send = build_receiver()
    send(0)
    send(2)
    send(3)
    send(1)  # fills the gap; 1,2,3 delivered together
    sim.run()
    assert delivered == [0, 1, 2, 3]
    assert receiver.rcv_nxt == 4


def test_duplicate_segment_acked_but_not_redelivered():
    sim, receiver, collector, delivered, send = build_receiver()
    send(0)
    send(0)
    sim.run()
    assert delivered == [0]
    assert receiver.duplicates == 1
    assert 1 in collector.acks


def test_delivery_callback_receives_payloads():
    pair = TcpPair()
    pair.write_all(3)
    pair.run()
    assert [p for _, p, _ in pair.delivered] == \
        ["pkt0", "pkt1", "pkt2"]


def test_receiver_counts():
    sim, receiver, collector, delivered, send = build_receiver()
    for seq in (0, 1, 3, 2):
        send(seq)
    sim.run()
    assert receiver.segments_received == 4
    assert receiver.delivered == 4
    assert receiver.acks_sent >= 2
