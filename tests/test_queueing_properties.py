"""Property-based invariants over every bottleneck queue discipline.

One hypothesis-driven operation language (offer / pop / advance the
clock) exercises all four disciplines through the same fixture, so
each invariant — packet conservation, non-negative backlog, bounded
occupancy, per-flow FIFO, bit-identical reruns under a fixed seed —
is asserted uniformly, including on the RED drop dynamics that
previously had no direct coverage.

The closing test pins the campaign-level contract: with the
``queue_discipline`` axis set, a serial `run_setting` and a 2-worker
one produce bit-identical results and identical telemetry span-tree
signatures.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import telemetry
from repro.experiments.configs import Setting
from repro.experiments.runner import ScaleProfile, run_setting
from repro.sim.packet import Packet
from repro.sim.queueing import (
    FQPIEQueue,
    PIEQueue,
    QUEUE_DISCIPLINES,
    REDQueue,
    make_queue,
)

CAPACITY = 12

#: (src, sport, dst, dport) endpoints for a handful of flows.
FLOWS = [("a", 1, "x", 9), ("b", 2, "x", 9), ("c", 3, "y", 9),
         ("d", 4, "y", 9)]


def make_packet(flow: int, seq: int, size: int) -> Packet:
    src, sport, dst, dport = FLOWS[flow]
    return Packet(src=src, dst=dst, sport=sport, dport=dport,
                  size=size, seq=seq)


# ---------------------------------------------------------------------
# The operation language
# ---------------------------------------------------------------------
ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"),
                  st.integers(min_value=0, max_value=len(FLOWS) - 1),
                  st.integers(min_value=100, max_value=2000)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("advance"),
                  st.integers(min_value=1, max_value=40)),  # ms
    ),
    min_size=1, max_size=120)


class Harness:
    """Drive one queue through an op sequence, recording everything."""

    def __init__(self, discipline: str, seed: int = 7) -> None:
        self.clock = [0.0]
        self.queue = make_queue(
            discipline, CAPACITY, rng=random.Random(seed),
            clock=lambda: self.clock[0])
        self.seq = [0] * len(FLOWS)
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.admitted_bytes = 0
        self.popped = []
        self.popped_bytes = 0
        self.decisions = []  # full observable trace, for determinism

    def run(self, operations) -> "Harness":
        for op in operations:
            if op[0] == "offer":
                _, flow, size = op
                packet = make_packet(flow, self.seq[flow], size)
                self.seq[flow] += 1
                self.offered += 1
                accepted = self.queue.offer(packet)
                self.decisions.append(("offer", flow, accepted))
                if accepted:
                    self.admitted += 1
                    self.admitted_bytes += size
                else:
                    self.rejected += 1
            elif op[0] == "pop":
                packet = self.queue.pop()
                if packet is None:
                    self.decisions.append(("pop", None))
                else:
                    self.popped.append(packet)
                    self.popped_bytes += packet.size
                    self.decisions.append(
                        ("pop", (packet.flow_key(), packet.seq)))
            else:  # advance
                self.clock[0] += op[1] / 1000.0
        return self


#: Shared parametrization: every test below runs once per discipline
#: (a plain parametrize, not a fixture — hypothesis resets examples
#: within one test call, so fixtures would outlive single examples).
all_disciplines = pytest.mark.parametrize("discipline",
                                          QUEUE_DISCIPLINES)


# ---------------------------------------------------------------------
# Invariants, uniformly over the four disciplines
# ---------------------------------------------------------------------
@all_disciplines
@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_packet_conservation_and_bounds(discipline, operations):
    h = Harness(discipline).run(operations)
    queue = h.queue
    # Conservation: every offered packet is admitted or counted as a
    # drop, and every admitted packet is popped or still queued.
    assert h.offered == h.admitted + h.rejected
    assert queue.drops == h.rejected
    assert queue.enqueued == h.admitted
    assert h.admitted == len(h.popped) + len(queue)
    # Bounds: occupancy never leaves [0, capacity].
    assert 0 <= len(queue) <= CAPACITY
    assert 0 <= queue.max_occupancy <= CAPACITY
    # Byte backlog (PIE family) mirrors the packet accounting.
    if isinstance(queue, (PIEQueue, FQPIEQueue)):
        assert queue.backlog_bytes \
            == h.admitted_bytes - h.popped_bytes
        assert queue.backlog_bytes >= 0
    if h.offered:
        assert queue.drop_fraction == pytest.approx(
            h.rejected / h.offered)


@all_disciplines
@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_fifo_within_flow(discipline, operations):
    """No discipline may reorder packets of one flow.

    For FQ-PIE this is the RFC 8290 within-flow FIFO guarantee (DRR
    interleaves flows but never reorders inside one); the single-queue
    disciplines satisfy it as a corollary of global FIFO.
    """
    h = Harness(discipline).run(operations)
    seen = {}
    for packet in h.popped:
        key = packet.flow_key()
        if key in seen:
            assert packet.seq > seen[key], \
                f"flow {key} reordered: {packet.seq} after {seen[key]}"
        seen[key] = packet.seq


@all_disciplines
@settings(max_examples=40, deadline=None)
@given(operations=ops, seed=st.integers(min_value=0, max_value=2**32))
def test_bit_identical_rerun_under_fixed_seed(discipline, operations,
                                              seed):
    """Same seed + same op sequence => the same observable trace."""
    first = Harness(discipline, seed=seed).run(operations)
    second = Harness(discipline, seed=seed).run(operations)
    assert first.decisions == second.decisions


@all_disciplines
def test_global_fifo_for_single_queue_disciplines(discipline):
    """Admitted packets leave in arrival order (single-queue only)."""
    if discipline == "fq-pie":
        pytest.skip("FQ interleaves flows by design")
    h = Harness(discipline)
    h.run([("offer", i % len(FLOWS), 1000) for i in range(CAPACITY)])
    h.run([("pop",)] * CAPACITY)
    uids = [p.uid for p in h.popped]
    assert uids == sorted(uids)


# ---------------------------------------------------------------------
# RED drop dynamics (the pre-existing coverage gap)
# ---------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=200),
       seed=st.integers(min_value=0, max_value=2**16))
def test_red_never_drops_below_min_threshold(n, seed):
    queue = REDQueue(capacity=1000, min_th=300, max_th=600,
                     rng=random.Random(seed))
    kept = sum(1 for i in range(n)
               if queue.offer(make_packet(0, i, 1000)))
    # avg occupancy can never reach min_th=300 from <= 200 packets.
    assert kept == n and queue.drops == 0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_red_always_drops_above_max_threshold(seed):
    queue = REDQueue(capacity=100, min_th=2, max_th=10, weight=1.0,
                     rng=random.Random(seed))
    for i in range(30):
        queue.offer(make_packet(0, i, 1000))
    # With weight=1 the average tracks the instantaneous length, so
    # once it reaches max_th every offer is a forced drop.
    assert len(queue) == 10
    assert queue.drops == 20


def test_red_ewma_tracks_occupancy():
    queue = REDQueue(capacity=100, min_th=40, max_th=80, weight=0.5,
                     rng=random.Random(3))
    avg = 0.0
    for i in range(20):
        avg = 0.5 * avg + 0.5 * len(queue._queue)
        queue.offer(make_packet(0, i, 1000))
        assert queue.avg == pytest.approx(avg)


# ---------------------------------------------------------------------
# Campaign contract: serial == parallel with the axis set
# ---------------------------------------------------------------------
TINY = ScaleProfile("tiny", runs=2, duration_s=30.0,
                    model_horizon_s=1000.0)
PIE_SETTING = dataclasses.replace(
    Setting("4-4", (4, 4), mu=80), queue_discipline="pie")


def test_run_setting_serial_matches_parallel_with_discipline():
    with telemetry.session() as serial:
        res_s = run_setting(PIE_SETTING, taus=(2.0,), profile=TINY,
                            seed0=11, max_workers=1, cache=False)
    with telemetry.session() as par:
        res_p = run_setting(PIE_SETTING, taus=(2.0,), profile=TINY,
                            seed0=11, max_workers=2, cache=False)
    assert res_s.points == res_p.points  # bit-identical results
    assert [r.signature() for r in serial.roots] \
        == [r.signature() for r in par.roots]
