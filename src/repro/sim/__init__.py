"""Discrete-event, packet-level network simulator.

This subpackage is the repository's substitute for ns-2: an event-driven
simulator with store-and-forward links, drop-tail queues, static routing
and packet tracing.  The TCP implementation that runs on top of it lives
in :mod:`repro.tcp`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.link import Link, duplex_link
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.pool import PacketPool
from repro.sim.queueing import DropTailQueue
from repro.sim.topology import (
    FanInTopology,
    IndependentPathsTopology,
    SharedBottleneckTopology,
)
from repro.sim.trace import PacketTrace, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "Packet",
    "PacketPool",
    "DropTailQueue",
    "Link",
    "duplex_link",
    "Node",
    "PacketTrace",
    "TraceRecord",
    "FanInTopology",
    "IndependentPathsTopology",
    "SharedBottleneckTopology",
]
