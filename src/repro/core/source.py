"""The live CBR video source."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.packets import VideoPacket
from repro.core.server_queue import ServerQueue
from repro.sim.engine import Simulator


class VideoSource:
    """Generates CBR video packets into a server queue.

    Live streaming per Section 2: generation starts at ``start_at``
    (time 0 in the paper), at exactly ``mu`` packets per second, and
    only already-generated packets can ever be transmitted — which the
    queue enforces naturally.
    """

    def __init__(self, sim: Simulator, queue: Optional[ServerQueue],
                 mu: float, duration_s: float, start_at: float = 0.0,
                 on_generate: Optional[Callable[[VideoPacket], None]]
                 = None):
        if mu <= 0:
            raise ValueError("playback rate mu must be positive")
        if duration_s <= 0:
            raise ValueError("video duration must be positive")
        self.sim = sim
        self.queue = queue
        self.mu = mu
        self.start_at = start_at
        self.total_packets = int(round(duration_s * mu))
        self._listeners: List[Callable[[VideoPacket], None]] = []
        if on_generate is not None:
            self._listeners.append(on_generate)
        self.generated = 0
        self._p_generate = sim.bus.probe("source.generate")
        sim.at(max(start_at, sim.now), self._generate_next)

    def add_listener(self,
                     listener: Callable[[VideoPacket], None]) -> None:
        """Register a callback fired after each packet is generated."""
        self._listeners.append(listener)

    @property
    def finished(self) -> bool:
        return self.generated >= self.total_packets

    def _generate_next(self) -> None:
        if self.finished:
            return
        packet = VideoPacket(number=self.generated,
                             generated_at=self.sim.now)
        if self._p_generate.active:
            self._p_generate.emit(self.sim.now, packet.number)
        if self.queue is not None:
            self.queue.push(packet)
        self.generated += 1
        for listener in self._listeners:
            listener(packet)
        if not self.finished:
            self.sim.schedule(1.0 / self.mu, self._generate_next)


class StoredVideoSource(VideoSource):
    """A pre-recorded video: every packet is available up front.

    The paper notes DMP-streaming "is also applicable to stored-video
    streaming" and leaves its study as future work; this source enables
    that extension.  All packets exist at ``start_at`` so the senders
    are never generation-limited — the early-packet bound ``mu * tau``
    of live streaming (Section 2.1) no longer applies and the client
    can buffer arbitrarily far ahead.

    ``mu`` still defines the playback rate (and thus deadlines); the
    listeners fire once per packet, in order, at the start instant.
    """

    def _generate_next(self) -> None:
        while not self.finished:
            packet = VideoPacket(number=self.generated,
                                 generated_at=self.sim.now)
            if self._p_generate.active:
                self._p_generate.emit(self.sim.now, packet.number)
            if self.queue is not None:
                self.queue.push(packet)
            self.generated += 1
            for listener in self._listeners:
                listener(packet)
