"""Tests for the on-disk result cache."""

import dataclasses
import json
import os

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    CODE_VERSION,
    ResultCache,
    resolve_cache,
    tau_key,
)
from repro.experiments.configs import Setting
from repro.experiments.parallel import ModelTask, RunSpec
from repro.experiments.runner import ScaleProfile, run_setting
from repro.model.dmp_model import LateFractionEstimate
from repro.model.meanfield import MeanFieldSpec
from repro.model.tcp_chain import FlowParams

TINY = ScaleProfile("tiny", runs=2, duration_s=40.0,
                    model_horizon_s=1000.0)
SETTING = Setting("4-4", (4, 4), mu=80)


def _spec(**overrides):
    base = dict(setting=SETTING, duration_s=40.0, scheme="dmp",
                seed=7, send_buffer_pkts=16, taus=(2.0,))
    base.update(overrides)
    return RunSpec(**base)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path))


# ---------------------------------------------------------------------
# Hit / miss and record merging
# ---------------------------------------------------------------------
def test_run_record_round_trip(cache):
    spec = _spec()
    assert cache.get_run(spec) is None
    assert cache.misses == 1
    record = {"flow_stats": [{"mean_rtt": 0.1}],
              "taus": {tau_key(2.0): [0.5, 0.4]}}
    cache.put_run(spec, record)
    assert cache.stores == 1
    assert cache.get_run(spec) == record
    assert cache.hits == 1


def test_missing_tau_is_a_miss_and_taus_merge(cache):
    spec2 = _spec(taus=(2.0,))
    cache.put_run(spec2, {"flow_stats": [],
                          "taus": {tau_key(2.0): [0.5, 0.4]}})
    spec4 = _spec(taus=(2.0, 4.0))
    assert cache.get_run(spec4) is None  # tau=4 not covered yet
    cache.put_run(spec4, {"flow_stats": [],
                          "taus": {tau_key(4.0): [0.2, 0.1]}})
    merged = cache.get_run(spec4)
    assert merged["taus"] == {tau_key(2.0): [0.5, 0.4],
                              tau_key(4.0): [0.2, 0.1]}
    # The original single-tau view still hits too.
    assert cache.get_run(spec2) is not None


# ---------------------------------------------------------------------
# Key sensitivity
# ---------------------------------------------------------------------
def test_run_key_sensitive_to_every_field(cache):
    base = _spec()
    variants = [
        _spec(setting=Setting("4-4x", (4, 4), mu=80)),
        _spec(setting=Setting("4-4", (4, 3), mu=80)),
        _spec(setting=Setting("4-4", (4, 4), mu=81)),
        _spec(setting=Setting("4-4", (4, 4), mu=80,
                              shared_bottleneck=True)),
        _spec(setting=Setting("4-4", (4, 4), mu=80,
                              queue_discipline="pie")),
        _spec(duration_s=41.0),
        _spec(scheme="static"),
        _spec(seed=8),
        _spec(send_buffer_pkts=17),
    ]
    keys = {cache.run_key(spec) for spec in variants}
    keys.add(cache.run_key(base))
    assert len(keys) == len(variants) + 1  # all distinct


def test_run_key_separates_queue_disciplines(cache):
    """Every AQM variant of one setting gets its own sha256 key."""
    keys = {cache.run_key(_spec(setting=dataclasses.replace(
        SETTING, queue_discipline=d)))
        for d in ("droptail", "red", "pie", "fq-pie")}
    assert len(keys) == 4
    payload = cache.run_key_payload(_spec())
    assert payload["setting"]["queue_discipline"] == "droptail"


def test_queue_discipline_axis_forced_a_version_bump():
    """Growing the key material (v5) upgrades old records.

    Records written before the axis existed carried version <= 4
    keys; the bump means they are never read back under the new
    semantics — an implicit-droptail record can't be served for any
    discipline.
    """
    assert CODE_VERSION >= 5


def test_run_key_ignores_taus(cache):
    assert cache.run_key(_spec(taus=(2.0,))) \
        == cache.run_key(_spec(taus=(2.0, 4.0, 8.0)))


def test_key_embeds_code_version(cache, monkeypatch):
    spec = _spec()
    before = cache.run_key(spec)
    monkeypatch.setattr(cache_mod, "CODE_VERSION", CODE_VERSION + 1)
    assert cache.run_key(spec) != before


def test_run_key_separates_backends(cache):
    """Packet and mean-field requests never share one record."""
    packet = cache.run_key(_spec())
    meanfield = cache.run_key(_spec(setting=dataclasses.replace(
        SETTING, n_sessions=100, backend="meanfield")))
    assert packet != meanfield
    payload = cache.run_key_payload(_spec())
    assert payload["setting"]["backend"] == "packet"


def test_backend_axis_forced_a_version_bump():
    """Growing the key material (v7, ``backend``) upgrades old
    records: a pre-backend record — implicitly packet — can never be
    read back for a mean-field request or vice versa."""
    assert CODE_VERSION >= 7


def _mf_spec(**overrides):
    base = dict(n_sessions=100, mu=10.0, bandwidth_pps=800.0,
                buffer_pkts=200.0, duration_s=30.0)
    base.update(overrides)
    return MeanFieldSpec(**base)


def test_meanfield_key_sensitive_to_every_field(cache):
    base = _mf_spec()
    variants = [
        _mf_spec(n_sessions=101),
        _mf_spec(mu=11.0),
        _mf_spec(bandwidth_pps=801.0),
        _mf_spec(buffer_pkts=201.0),
        _mf_spec(queue_discipline="red"),
        _mf_spec(paths_per_session=3),
        _mf_spec(n_background=1),
        _mf_spec(base_rtt_s=0.07),
        _mf_spec(duration_s=31.0),
        _mf_spec(warmup_s=21.0),
        _mf_spec(drain_s=61.0),
        _mf_spec(wmax=33),
        _mf_spec(to_ratio=2.5),
        _mf_spec(min_rto_s=0.3),
        _mf_spec(dt=0.004),
    ]
    keys = {cache.meanfield_key(spec) for spec in variants}
    keys.add(cache.meanfield_key(base))
    assert len(keys) == len(variants) + 1
    payload = cache.meanfield_key_payload(base)
    assert payload["kind"] == "meanfield"
    assert payload["backend"] == "meanfield"
    assert payload["version"] == cache_mod.CODE_VERSION


def test_meanfield_record_round_trip_and_tau_merge(cache):
    spec = _mf_spec()
    assert cache.get_meanfield(spec, [2.0]) is None
    assert cache.misses == 1
    cache.put_meanfield(spec, {"backend": "meanfield",
                               "taus": {tau_key(2.0): 0.5}})
    assert cache.stores == 1
    assert cache.get_meanfield(spec, [2.0])["taus"] \
        == {tau_key(2.0): 0.5}
    assert cache.hits == 1
    # A new tau misses, then merges with the prior record.
    assert cache.get_meanfield(spec, [2.0, 4.0]) is None
    cache.put_meanfield(spec, {"backend": "meanfield",
                               "taus": {tau_key(4.0): 0.25}})
    merged = cache.get_meanfield(spec, [2.0, 4.0])
    assert merged["taus"] == {tau_key(2.0): 0.5, tau_key(4.0): 0.25}


def test_corrupted_meanfield_record_is_a_miss(cache, tmp_path):
    spec = _mf_spec()
    path = os.path.join(str(tmp_path),
                        cache.meanfield_key(spec) + ".json")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"taus": "not-a-dict"}, handle)
    assert cache.get_meanfield(spec, [2.0]) is None


def test_model_key_sensitive_to_flows_and_inputs(cache):
    flow = FlowParams(p=0.02, rtt=0.1, to_ratio=2.0)
    base = ModelTask(flows=(flow, flow), mu=20.0, tau=4.0,
                     horizon_s=1000.0, seed=0)
    variants = [
        dataclasses.replace(base, flows=(
            FlowParams(p=0.03, rtt=0.1, to_ratio=2.0), flow)),
        dataclasses.replace(base, flows=(flow,)),
        dataclasses.replace(base, mu=21.0),
        dataclasses.replace(base, tau=5.0),
        dataclasses.replace(base, horizon_s=2000.0),
        dataclasses.replace(base, seed=1),
    ]
    keys = {cache.model_key(task) for task in variants}
    keys.add(cache.model_key(base))
    assert len(keys) == len(variants) + 1


# ---------------------------------------------------------------------
# Directory resolution
# ---------------------------------------------------------------------
def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "env"))
    assert ResultCache().directory == str(tmp_path / "env")
    monkeypatch.delenv(cache_mod.ENV_CACHE_DIR)
    assert ResultCache().directory.endswith(
        os.path.join(".cache", "repro"))
    # An explicit directory beats the environment.
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "env"))
    assert ResultCache(str(tmp_path / "arg")).directory \
        == str(tmp_path / "arg")


# ---------------------------------------------------------------------
# Robustness
# ---------------------------------------------------------------------
def test_corrupted_record_is_a_miss(cache, tmp_path):
    spec = _spec()
    cache.put_run(spec, {"flow_stats": [],
                         "taus": {tau_key(2.0): [0.5, 0.4]}})
    path = os.path.join(str(tmp_path), cache.run_key(spec) + ".json")
    full = open(path).read()
    with open(path, "w") as handle:
        handle.write(full[:len(full) // 2])  # truncated JSON
    assert cache.get_run(spec) is None
    # And a fresh put repairs it.
    cache.put_run(spec, {"flow_stats": [],
                         "taus": {tau_key(2.0): [0.5, 0.4]}})
    assert cache.get_run(spec) is not None


def test_non_dict_and_schema_less_records_are_misses(cache, tmp_path):
    spec = _spec()
    path = os.path.join(str(tmp_path), cache.run_key(spec) + ".json")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump([1, 2, 3], handle)
    assert cache.get_run(spec) is None
    with open(path, "w") as handle:
        json.dump({"taus": "not-a-dict", "flow_stats": []}, handle)
    assert cache.get_run(spec) is None


def test_corrupted_model_record_is_a_miss(cache, tmp_path):
    flow = FlowParams(p=0.02, rtt=0.1, to_ratio=2.0)
    task = ModelTask(flows=(flow,), mu=20.0, tau=4.0,
                     horizon_s=1000.0, seed=0)
    path = os.path.join(str(tmp_path), cache.model_key(task) + ".json")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"late_fraction": "NaN-ish-garbage"}, handle)
    assert cache.get_model(task) is None


def test_unwritable_directory_degrades_to_no_caching(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    broken = ResultCache(str(blocker / "sub"))
    broken.put_run(_spec(), {"flow_stats": [], "taus": {}})
    assert broken.stores == 0  # silently skipped, no exception


def test_model_estimate_round_trip(cache):
    flow = FlowParams(p=0.02, rtt=0.1, to_ratio=2.0)
    task = ModelTask(flows=(flow, flow), mu=20.0, tau=4.0,
                     horizon_s=1000.0, seed=0)
    estimate = LateFractionEstimate(
        late_fraction=0.0125, stderr=0.001, horizon_s=1000.0,
        method="mc", path_shares=(0.5, 0.5))
    cache.put_model(task, estimate)
    assert cache.get_model(task) == estimate


# ---------------------------------------------------------------------
# run_setting integration: warm cache means zero new simulations
# ---------------------------------------------------------------------
def test_warm_cache_skips_all_simulation(cache, monkeypatch):
    cold = run_setting(SETTING, taus=(2.0,), profile=TINY, seed0=7,
                       run_model=False, cache=cache)
    assert cache.stores == TINY.runs

    from repro.experiments import parallel

    def bomb(spec):
        raise AssertionError("warm cache must not simulate")

    monkeypatch.setattr(parallel, "simulate_run", bomb)
    warm = run_setting(SETTING, taus=(2.0,), profile=TINY, seed0=7,
                       run_model=False, cache=cache)
    assert warm.per_run_late == cold.per_run_late
    assert warm.measured == cold.measured
    assert [(pt.tau, pt.sim_mean, pt.sim_ci95,
             pt.sim_arrival_order_mean) for pt in warm.points] \
        == [(pt.tau, pt.sim_mean, pt.sim_ci95,
             pt.sim_arrival_order_mean) for pt in cold.points]


def test_cache_false_bypasses_default(tmp_path, monkeypatch):
    cache_mod.configure(enabled=True, directory=str(tmp_path))
    try:
        run_setting(SETTING, taus=(2.0,), profile=TINY, seed0=7,
                    run_model=False, cache=False)
        assert os.listdir(str(tmp_path)) == []  # bypassed
        run_setting(SETTING, taus=(2.0,), profile=TINY, seed0=7,
                    run_model=False)  # cache=None -> default
        assert len(os.listdir(str(tmp_path))) == TINY.runs
    finally:
        cache_mod.configure(enabled=None, directory=None)


def test_resolve_cache_semantics(tmp_path):
    cache_mod.configure(enabled=False)
    try:
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        explicit = ResultCache(str(tmp_path))
        assert resolve_cache(explicit) is explicit
        cache_mod.configure(enabled=True, directory=str(tmp_path))
        default = resolve_cache(None)
        assert isinstance(default, ResultCache)
        assert default.directory == str(tmp_path)
        assert resolve_cache(None) is default  # shared instance
    finally:
        cache_mod.configure(enabled=None, directory=None)


# ---------------------------------------------------------------------
# Verification records (repro.verify)
# ---------------------------------------------------------------------
def _verify_spec(**overrides):
    from repro.verify import PathBudget, VerifySpec
    base = dict(
        mu_r=2, tau=2, rounds=8,
        paths=(PathBudget(rate=2, slack=2, loss=1, delay=0, buffer=3),
               PathBudget(rate=1, slack=1, loss=0, delay=1, buffer=2)),
    )
    base.update(overrides)
    return VerifySpec(**base)


def test_verify_records_forced_a_version_bump():
    """Verification results entered the cache in v8; older records
    must never satisfy a verify lookup."""
    assert CODE_VERSION >= 8


def test_verify_key_sensitive_to_every_field(cache):
    from repro.verify import PathBudget
    base = cache.verify_key(_verify_spec())
    assert cache.verify_key(_verify_spec(mu_r=3)) != base
    assert cache.verify_key(_verify_spec(tau=1)) != base
    assert cache.verify_key(_verify_spec(rounds=9)) != base
    bumped = list(_verify_spec().paths)
    bumped[0] = PathBudget(rate=2, slack=3, loss=1, delay=0, buffer=3)
    assert cache.verify_key(
        _verify_spec(paths=tuple(bumped))) != base
    assert cache.verify_key(
        _verify_spec(static_shares=(0, 2))) != base
    assert cache.verify_key(_verify_spec(), scheme="static") != base
    assert cache.verify_key(_verify_spec(), engine="z3") != base
    assert cache.verify_key(_verify_spec(), query="starve") != base


def test_verify_key_uses_resolved_defaults(cache):
    """Spelling out the default gen_rounds/static_shares resolves to
    the same instance, hence the same record; the display label never
    reaches the key."""
    base = cache.verify_key(_verify_spec())
    spec = _verify_spec()
    explicit = _verify_spec(gen_rounds=spec.generation_rounds,
                            static_shares=spec.shares)
    assert cache.verify_key(explicit) == base
    assert cache.verify_key(_verify_spec(label="renamed")) == base


def test_verify_record_round_trip_and_shape_check(cache):
    spec = _verify_spec()
    assert cache.get_verify(spec) is None
    with pytest.raises(ValueError):
        cache.put_verify(spec)
    record = {"value": 2,
              "choices": {"fill": [], "shortfall": [], "lost": []}}
    cache.put_verify(spec, record=record)
    assert cache.get_verify(spec) == record
    # Same spec under a different scheme/query is a separate record.
    assert cache.get_verify(spec, scheme="static") is None
    assert cache.get_verify(spec, query="starve") is None


def test_malformed_verify_record_is_a_miss(cache, tmp_path):
    spec = _verify_spec()
    cache.put_verify(spec, record={"value": 2, "choices": {}})
    # Strip the witness: shape check refuses to surface the record.
    path = os.path.join(str(tmp_path),
                        cache.verify_key(spec) + ".json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"value": 2}, handle)
    assert cache.get_verify(spec) is None
