"""z3 constraint encoding of the DMP data path.

One constraint group per aspect of the dynamics, mirroring the CCAC
exemplar's ``model.py`` layout: :func:`initial_conditions`,
:func:`generation_and_fill` (work-conserving implicit pull),
:func:`service_curves` (token-bucket service ``C_k·t - W_k(t)`` with
bounded slack), :func:`loss_budgets` (lost packets re-enter the send
buffer: conservation ``cum_served - cum_lost`` — delivered data —
never decreases), :func:`buffer_bounds` (the paper's
blocking/backpressure rule), :func:`client_delivery` (fixed per-path
delay), and :func:`playout_deadlines` (each packet counted late once,
at its own deadline round).

The encoding is pure linear integer arithmetic over the
:class:`~repro.verify.variables.Variables` trace — every constant is a
Python ``int`` (repro-lint RL006 rejects float literals here, because
a float that rounds inside a constraint silently changes what is being
certified).

These constraints are *exactly* the replay semantics of
:func:`repro.verify.cex.replay_trace`; queries replay every witness to
enforce that equivalence at runtime.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.experiments.optional_deps import optional_import
from repro.verify.spec import VerifySpec
from repro.verify.variables import Variables

__all__ = [
    "z3_module",
    "encode",
    "make_solver",
]


def z3_module() -> Any:
    """Import z3 or raise the shared MissingDependencyError."""
    return optional_import("z3", extra="verify", package="z3-solver")


def _min(z3: Any, a: Any, b: Any) -> Any:
    return z3.If(a <= b, a, b)


def _prev(row: List[Any], t: int) -> Any:
    """Value at the end of the previous round (0 before round 0)."""
    return row[t - 1] if t > 0 else 0


def initial_conditions(spec: VerifySpec, v: Variables,
                       z3: Any) -> List[Any]:
    """Everything empty before round 0 is folded into ``_prev``; what
    remains is non-negativity of every trace variable."""
    out: List[Any] = []
    for grid in (v.fill, v.shortfall, v.served, v.lost,
                 v.delivered, v.buf, v.cum_shortfall, v.cum_lost,
                 v.cum_served):
        for row in grid:
            for var in row:
                out.append(var >= 0)
    for grid2 in (v.queue, v.client):
        for row in grid2:
            for var in row:
                out.append(var >= 0)
    for t in range(spec.rounds):
        out.append(v.late[t] >= 0)
        out.append(v.streak[t] >= 0)
    return out


def generation_and_fill(spec: VerifySpec, v: Variables,
                        z3: Any) -> List[Any]:
    """Source generation and the work-conserving implicit pull.

    DMP: the adversary splits the forced total fill across paths with
    buffer room.  Static: each substream queue drains into its own
    path's buffer deterministically.
    """
    out: List[Any] = []
    kk = spec.n_paths
    for t in range(spec.rounds):
        g = spec.generated(t)
        rooms = [
            spec.paths[k].buffer - (v.buf[k][t - 1] if t > 0 else 0)
            for k in range(kk)
        ]
        if v.scheme == "dmp":
            q_pre = _prev(v.queue[0], t) + g
            fill_sum = z3.Sum([v.fill[k][t] for k in range(kk)])
            room_sum = z3.Sum(rooms)
            for k in range(kk):
                out.append(v.fill[k][t] <= rooms[k])
            out.append(fill_sum == _min(z3, q_pre, room_sum))
            out.append(v.queue[0][t] == q_pre - fill_sum)
        else:
            for k in range(kk):
                g_k = spec.shares[k] if g else 0
                q_pre = _prev(v.queue[k], t) + g_k
                out.append(
                    v.fill[k][t] == _min(z3, q_pre, rooms[k])
                )
                out.append(
                    v.queue[k][t] == q_pre - v.fill[k][t]
                )
    return out


def service_curves(spec: VerifySpec, v: Variables,
                   z3: Any) -> List[Any]:
    """Token-bucket service: path k offers ``rate - shortfall``
    packets per round and the cumulative shortfall never exceeds the
    slack budget ``W_k`` (i.e. cumulative offered service stays above
    ``C_k·(t+1) - W_k``).  Service is work-conserving against the
    post-fill buffer: served = min(buffer, offered)."""
    out: List[Any] = []
    for k, p in enumerate(spec.paths):
        for t in range(spec.rounds):
            w = v.shortfall[k][t]
            out.append(w <= p.rate)
            out.append(
                v.cum_shortfall[k][t]
                == _prev(v.cum_shortfall[k], t) + w
            )
            out.append(v.cum_shortfall[k][t] <= p.slack)
            buf_pre = _prev(v.buf[k], t) + v.fill[k][t]
            out.append(
                v.served[k][t]
                == _min(z3, buf_pre, p.rate - w)
            )
            out.append(
                v.cum_served[k][t]
                == _prev(v.cum_served[k], t) + v.served[k][t]
            )
    return out


def loss_budgets(spec: VerifySpec, v: Variables,
                 z3: Any) -> List[Any]:
    """Bounded adversarial loss with TCP retransmission semantics:
    a lost packet consumed service but stays in the send buffer, so
    delivered data ``cum_served - cum_lost`` is non-decreasing
    (conservation — the stream is never thinned, only delayed)."""
    out: List[Any] = []
    for k, p in enumerate(spec.paths):
        for t in range(spec.rounds):
            out.append(v.lost[k][t] <= v.served[k][t])
            out.append(
                v.cum_lost[k][t]
                == _prev(v.cum_lost[k], t) + v.lost[k][t]
            )
            out.append(v.cum_lost[k][t] <= p.loss)
            out.append(
                v.delivered[k][t]
                == v.served[k][t] - v.lost[k][t]
            )
            # Conservation, stated CCAC-style even though it follows
            # from delivered >= 0: A_f - L_f never decreases.
            out.append(
                v.cum_served[k][t] - v.cum_lost[k][t]
                >= _prev(v.cum_served[k], t)
                - _prev(v.cum_lost[k], t)
            )
    return out


def buffer_bounds(spec: VerifySpec, v: Variables,
                  z3: Any) -> List[Any]:
    """Send-buffer occupancy: bounded by the socket buffer size
    (blocking/backpressure), drained only by successful delivery."""
    out: List[Any] = []
    for k, p in enumerate(spec.paths):
        for t in range(spec.rounds):
            buf_pre = _prev(v.buf[k], t) + v.fill[k][t]
            out.append(buf_pre <= p.buffer)
            out.append(
                v.buf[k][t] == buf_pre - v.delivered[k][t]
            )
            out.append(v.buf[k][t] <= p.buffer)
    return out


def client_delivery(spec: VerifySpec, v: Variables,
                    z3: Any) -> List[Any]:
    """Client arrivals: path k's deliveries land ``delay_k`` rounds
    later; the client counter is monotone."""
    out: List[Any] = []
    kk = spec.n_paths
    for t in range(spec.rounds):
        if v.scheme == "dmp":
            arr: List[Any] = []
            for k in range(kk):
                t_src = t - spec.paths[k].delay
                if t_src >= 0:
                    arr.append(v.delivered[k][t_src])
            inc = z3.Sum(arr) if arr else 0
            out.append(
                v.client[0][t] == _prev(v.client[0], t) + inc
            )
            out.append(v.client[0][t] >= _prev(v.client[0], t))
        else:
            for k in range(kk):
                t_src = t - spec.paths[k].delay
                inc = v.delivered[k][t_src] if t_src >= 0 else 0
                out.append(
                    v.client[k][t]
                    == _prev(v.client[k], t) + inc
                )
                out.append(
                    v.client[k][t] >= _prev(v.client[k], t)
                )
    return out


def playout_deadlines(spec: VerifySpec, v: Variables,
                      z3: Any) -> List[Any]:
    """Lateness and starvation accounting.

    ``late[t] = min(new_due_t, max(0, due_t - client_t))`` counts each
    packet late exactly once, at its own deadline round (arrivals are
    credited to the earliest outstanding deadline, matching in-order
    playout).  ``streak[t]`` counts consecutive starved playout rounds
    for the starvation query.
    """
    out: List[Any] = []
    kk = spec.n_paths
    for t in range(spec.rounds):
        if v.scheme == "dmp":
            due = spec.due_end(t)
            inc = due - spec.due_end(t - 1)
            deficit = due - v.client[0][t]
            pos = z3.If(deficit >= 0, deficit, 0)
            out.append(v.late[t] == _min(z3, inc, pos))
            starved = deficit >= 1
        else:
            terms: List[Any] = []
            star_terms: List[Any] = []
            for k in range(kk):
                due_k = spec.path_due_end(k, t)
                inc_k = due_k - spec.path_due_end(k, t - 1)
                deficit_k = due_k - v.client[k][t]
                pos_k = z3.If(deficit_k >= 0, deficit_k, 0)
                terms.append(_min(z3, inc_k, pos_k))
                star_terms.append(deficit_k >= 1)
            out.append(v.late[t] == z3.Sum(terms))
            starved = z3.Or(star_terms)
        if t < spec.tau:
            # Playout has not started: the client cannot starve.
            out.append(v.streak[t] == 0)
        else:
            out.append(
                v.streak[t]
                == z3.If(starved, _prev(v.streak, t) + 1, 0)
            )
    out.append(v.late_total == z3.Sum(list(v.late)))
    return out


def encode(spec: VerifySpec, scheme: str = "dmp") \
        -> Tuple[List[Any], Variables, Any]:
    """Build the full constraint list for one instance.

    Returns ``(constraints, variables, z3_module)``.
    """
    z3 = z3_module()
    v = Variables(spec, scheme, z3)
    constraints: List[Any] = []
    for group in (
        initial_conditions,
        generation_and_fill,
        service_curves,
        loss_budgets,
        buffer_bounds,
        client_delivery,
        playout_deadlines,
    ):
        constraints.extend(group(spec, v, z3))
    return constraints, v, z3


def make_solver(spec: VerifySpec, scheme: str = "dmp") \
        -> Tuple[Any, Variables, Any]:
    """A z3 Solver preloaded with the instance constraints."""
    constraints, v, z3 = encode(spec, scheme)
    solver = z3.Solver()
    for c in constraints:
        solver.add(c)
    return solver, v, z3
