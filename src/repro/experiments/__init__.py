"""The paper's experiment matrix.

* :mod:`repro.experiments.configs` — Table-1 bottleneck configurations
  and the Settings i-j of Section 5 (plus our recalibrated operating
  points, see module docstring).
* :mod:`repro.experiments.runner` — replicated simulation runs with
  confidence intervals and model comparison (Figs. 4-6, Tables 2-3).
* :mod:`repro.experiments.measure` — tcpdump-style per-flow parameter
  estimation from packet traces (Section 6 methodology).
* :mod:`repro.experiments.internet` — emulated wide-area experiments
  standing in for the paper's PlanetLab runs (Fig. 7).
* :mod:`repro.experiments.sweep` — the Section-7 model-based parameter
  exploration (Figs. 8-11).
* :mod:`repro.experiments.parallel` — process-pool fan-out of
  replications and model solves with deterministic seeding.
* :mod:`repro.experiments.cache` — on-disk memoisation of simulated
  runs and model solves.
* :mod:`repro.experiments.report` — plain-text table/figure rendering.
"""

from repro.experiments.cache import CODE_VERSION, ResultCache
from repro.experiments.configs import (
    CALIBRATED_CONFIGS,
    CORRELATED_SETTINGS,
    HETEROGENEOUS_SETTINGS,
    HOMOGENEOUS_SETTINGS,
    PAPER_TABLE1,
    LinkConfig,
    Setting,
)
from repro.experiments.parallel import (
    ModelTask,
    ReplicationExecutor,
    RunSpec,
)
from repro.experiments.runner import (
    ReplicatedRun,
    ScaleProfile,
    run_setting,
    scale_profile,
)
from repro.experiments.scenarios import (
    build_session,
    load_scenario,
    run_scenario,
)

__all__ = [
    "build_session",
    "load_scenario",
    "run_scenario",
    "LinkConfig",
    "Setting",
    "PAPER_TABLE1",
    "CALIBRATED_CONFIGS",
    "HOMOGENEOUS_SETTINGS",
    "HETEROGENEOUS_SETTINGS",
    "CORRELATED_SETTINGS",
    "ScaleProfile",
    "scale_profile",
    "ReplicatedRun",
    "run_setting",
    "ReplicationExecutor",
    "RunSpec",
    "ModelTask",
    "ResultCache",
    "CODE_VERSION",
]
