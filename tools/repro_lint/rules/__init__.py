"""Rule registry.  Each rule module exposes ``RULE``, ``SUMMARY`` and
``check(project) -> list[Finding]`` (plus ``check_diff`` for rules that
inspect a unified diff)."""

from tools.repro_lint.rules import (
    rl001_wallclock,
    rl002_unordered,
    rl003_probe_schema,
    rl004_cache_key,
    rl005_float_eq,
    rl006_z3_float,
)

ALL_RULES = (
    rl001_wallclock,
    rl002_unordered,
    rl003_probe_schema,
    rl004_cache_key,
    rl005_float_eq,
    rl006_z3_float,
)

__all__ = ["ALL_RULES"]
