"""Injectable clocks for telemetry timestamps.

Runtime code under ``src/repro`` is RL001-clean: it never reads the
wall clock, because wall time must never leak into simulated time or
results.  Telemetry *is* about wall time, so the one sanctioned read
lives here, behind a narrow interface: every :class:`Telemetry`
session owns a :class:`Clock`, and tests inject a
:class:`VirtualClock` to get deterministic span timings.

Telemetry timestamps are monotonic seconds from an arbitrary origin
(``CLOCK_MONOTONIC``), which on Linux is system-wide: readings taken
in forked/spawned worker processes are directly comparable with the
parent's, which is what makes queue-wait measurement across the
process pool meaningful.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Anything with a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Current time in seconds from an arbitrary fixed origin."""
        ...


class WallClock:
    """The real monotonic clock (the only wall-time read in repro)."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()  # repro-lint: disable=RL001 -- telemetry timestamps only; never feeds simulated time or results


class VirtualClock:
    """Deterministic test clock: advances only when told to."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds
        return self._now
