"""Extension — transient (finite-video) model vs finite simulations.

The paper validates the *stationary* model against 10,000 s runs.  At
shorter video lengths the stationary answer overstates lateness (rare
deep-deficit excursions dominate its tail but rarely occur within a
short clip).  The transient solver models the finite video directly —
startup ramp, live cap and end-of-video drain included — and should
track the finite simulations more tightly than the stationary solver
at the quick profile.
"""

from conftest import run_once

from repro.experiments.configs import HOMOGENEOUS_SETTINGS
from repro.experiments.report import render_table
from repro.experiments.runner import run_setting, scale_profile
from repro.model.dmp_model import DmpModel

TAUS = (4.0, 6.0, 8.0)


def _build():
    profile = scale_profile()
    setting = HOMOGENEOUS_SETTINGS["2-2"]
    run = run_setting(setting, taus=TAUS, profile=profile, seed0=770)

    rows = []
    for point in run.points:
        model = DmpModel(run.flow_params, mu=setting.mu,
                         tau=point.tau)
        transient = model.late_fraction_transient(
            video_s=profile.duration_s,
            replications=max(profile.runs * 3, 10), seed=770)
        rows.append([
            f"{point.tau:g}",
            f"{point.sim_mean:.3e}",
            f"{point.model_f:.3e}",
            f"{transient.late_fraction:.3e}",
            f"{transient.stderr:.1e}",
        ])
    return render_table(
        ["tau (s)", f"sim f ({profile.duration_s:.0f}s video)",
         "stationary model f", "transient model f", "transient se"],
        rows,
        title=f"Extension: transient vs stationary model, Setting 2-2 "
              f"(profile={profile.name})")


def test_transient_validation(benchmark, artifact):
    text = run_once(benchmark, _build)
    artifact("transient_validation.txt", text)
    assert "transient model f" in text
