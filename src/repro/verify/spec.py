"""Problem specification for the SMT/exhaustive DMP verifier.

Everything here is *integer* by design: the verifier reasons in
discrete rounds (one round = one playout tick of ``mu_r`` packets) and
integer packet counts, so that both the z3 encoding and the exhaustive
engine are exact — no float rounding can creep into a certificate.

A :class:`VerifySpec` describes the whole closed system:

* a constant-rate source generating ``mu_r`` packets per round for
  ``gen_rounds`` rounds into the server queue;
* ``K`` paths, each a network-calculus service pair
  (:class:`PathBudget`): per-round service up to ``rate`` with a
  cumulative shortfall (slack) budget, a cumulative loss budget whose
  lost packets are *retransmitted* (TCP semantics: loss wastes service,
  it never drops stream data), a fixed delivery delay in rounds, and a
  bounded send buffer with the paper's blocking/backpressure rule;
* a client playout buffer that starts draining ``mu_r`` packets per
  round after a startup delay of ``tau`` rounds.

The adversary controls, within budgets: how the work-conserving fill
is split across eligible paths (implicit pull), how much service each
path withholds each round, and which served packets are lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "PathBudget",
    "VerifySpec",
    "largest_remainder_shares",
]


@dataclass(frozen=True)
class PathBudget:
    """Integer network-calculus budgets for one path.

    ``rate``
        Maximum packets the path can serve per round (token rate
        ``C_k`` of the service curve ``C_k * t - W_k(t)``).
    ``slack``
        Total service shortfall ``W_k`` the adversary may inject over
        the whole horizon (cumulative token-bucket slack).
    ``loss``
        Total packets the adversary may lose on this path over the
        horizon.  Lost packets return to the send buffer (TCP
        retransmits), so loss burns service and delays delivery but
        never removes stream data: conservation ``S_k - L_k``
        (served minus lost, i.e. delivered) stays non-decreasing.
    ``delay``
        Delivery delay in whole rounds between leaving the send buffer
        and arriving at the client (propagation + reordering bound).
    ``buffer``
        Send-buffer capacity in packets (the paper's per-connection
        socket buffer that blocking/backpressure acts on).
    """

    rate: int
    slack: int
    loss: int
    delay: int = 0
    buffer: int = 4

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0: {self.rate}")
        if self.slack < 0:
            raise ValueError(f"slack must be >= 0: {self.slack}")
        if self.loss < 0:
            raise ValueError(f"loss must be >= 0: {self.loss}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0: {self.delay}")
        if self.buffer < 1:
            raise ValueError(f"buffer must be >= 1: {self.buffer}")


def largest_remainder_shares(
    mu_r: int, rates: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Split ``mu_r`` packets/round across paths proportionally to
    ``rates`` using the largest-remainder method (ties to the earlier
    path).  Used as the default static-scheme generation split."""
    if mu_r < 0:
        raise ValueError(f"mu_r must be >= 0: {mu_r}")
    total = sum(rates)
    if total <= 0:
        # Degenerate: no capacity anywhere; give everything to path 0.
        return tuple(
            mu_r if k == 0 else 0 for k in range(len(rates))
        )
    floors = [mu_r * r // total for r in rates]
    remainders = [
        (mu_r * r % total, -k) for k, r in enumerate(rates)
    ]
    leftover = mu_r - sum(floors)
    for _, neg_k in sorted(remainders, reverse=True)[:leftover]:
        floors[-neg_k] += 1
    return tuple(floors)


@dataclass(frozen=True)
class VerifySpec:
    """One verification problem instance (see module docstring).

    ``gen_rounds`` defaults to ``rounds - tau`` so that every generated
    packet's playout deadline lands inside the horizon; explicit values
    must respect ``tau + gen_rounds <= rounds`` for the same reason
    (otherwise the envelope would silently ignore the tail packets).

    ``static_shares`` fixes the static scheme's per-path generation
    split; it defaults to a largest-remainder split proportional to
    path rates.  The DMP scheme ignores it.
    """

    mu_r: int
    tau: int
    rounds: int
    paths: Tuple[PathBudget, ...]
    gen_rounds: Optional[int] = None  # repro-lint: disable=RL004 -- keyed via its resolved value _gen
    static_shares: Optional[Tuple[int, ...]] = None  # repro-lint: disable=RL004 -- keyed via its resolved value _shares
    label: str = ""  # repro-lint: disable=RL004 -- display name, no effect on results
    # Derived, filled by __post_init__ (kept out of equality/repr).
    _gen: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _shares: Tuple[int, ...] = field(
        default=(), init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.mu_r < 1:
            raise ValueError(f"mu_r must be >= 1: {self.mu_r}")
        if self.tau < 0:
            raise ValueError(f"tau must be >= 0: {self.tau}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1: {self.rounds}")
        if not self.paths:
            raise ValueError("need at least one path")
        if not isinstance(self.paths, tuple):
            raise ValueError("paths must be a tuple of PathBudget")
        gen = self.gen_rounds
        if gen is None:
            gen = self.rounds - self.tau
        if gen < 1:
            raise ValueError(
                "no generation rounds: need rounds > tau or an "
                f"explicit gen_rounds >= 1 (got {gen})"
            )
        if self.tau + gen > self.rounds:
            raise ValueError(
                f"horizon too short: tau + gen_rounds = "
                f"{self.tau + gen} > rounds = {self.rounds} would "
                "leave deadlines outside the window"
            )
        shares = self.static_shares
        if shares is None:
            shares = largest_remainder_shares(
                self.mu_r, tuple(p.rate for p in self.paths)
            )
        if len(shares) != len(self.paths):
            raise ValueError(
                f"static_shares has {len(shares)} entries for "
                f"{len(self.paths)} paths"
            )
        if any(s < 0 for s in shares):
            raise ValueError(f"negative static share: {shares}")
        if sum(shares) != self.mu_r:
            raise ValueError(
                f"static_shares must sum to mu_r={self.mu_r}: "
                f"{shares}"
            )
        object.__setattr__(self, "_gen", gen)
        object.__setattr__(self, "_shares", tuple(shares))

    # -- derived quantities -------------------------------------------

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    @property
    def generation_rounds(self) -> int:
        """Resolved number of rounds the source generates packets."""
        return self._gen

    @property
    def total_packets(self) -> int:
        return self.mu_r * self._gen

    @property
    def shares(self) -> Tuple[int, ...]:
        """Resolved static-scheme per-path generation split."""
        return self._shares

    def generated(self, t: int) -> int:
        """Packets generated in round ``t`` (0-indexed)."""
        return self.mu_r if 0 <= t < self._gen else 0

    def due_end(self, t: int) -> int:
        """Cumulative packets due for playout by the end of round
        ``t``: playout starts at round ``tau`` and drains ``mu_r``
        per round until the stream is exhausted."""
        if t < self.tau:
            return 0
        return min(self.mu_r * (t - self.tau + 1), self.total_packets)

    def path_due_end(self, k: int, t: int) -> int:
        """Static scheme: cumulative *substream-k* packets due by the
        end of round ``t`` (the client plays the interleaved stream,
        so each substream owes ``shares[k]`` packets per tick)."""
        if t < self.tau:
            return 0
        return min(
            self._shares[k] * (t - self.tau + 1),
            self._shares[k] * self._gen,
        )

    def provision_ratio(self) -> float:
        """Aggregate path rate over the stream rate (reporting only;
        never used in constraints)."""
        return sum(p.rate for p in self.paths) / self.mu_r
