"""Tests for the config-driven scenario builder."""

import json

import pytest

from repro.experiments.scenarios import (
    ScenarioError,
    build_session,
    load_scenario,
    run_scenario,
    validate_scenario,
)

GOOD = {
    "mu": 40,
    "duration_s": 20,
    "seed": 3,
    "taus": [2, 4],
    "paths": [
        {"bandwidth_mbps": 2.0, "delay_ms": 5, "buffer_pkts": 40},
        {"bandwidth_mbps": 2.0, "delay_ms": 5, "buffer_pkts": 40,
         "ftp_flows": 1, "http_flows": 2},
    ],
}


def test_validate_good():
    validate_scenario(GOOD)  # no raise


def test_missing_required_key():
    bad = dict(GOOD)
    del bad["mu"]
    with pytest.raises(ScenarioError, match="mu"):
        validate_scenario(bad)


def test_unknown_key_rejected():
    bad = dict(GOOD, colour="blue")
    with pytest.raises(ScenarioError, match="unknown"):
        validate_scenario(bad)


def test_bad_paths():
    with pytest.raises(ScenarioError):
        validate_scenario(dict(GOOD, paths=[]))
    with pytest.raises(ScenarioError):
        validate_scenario(dict(GOOD, paths=[{"delay_ms": 5}]))
    with pytest.raises(ScenarioError):
        validate_scenario(dict(
            GOOD, paths=[{"bandwidth_mbps": -1}]))
    with pytest.raises(ScenarioError):
        validate_scenario(dict(
            GOOD, paths=[{"bandwidth_mbps": 1, "wings": 2}]))


def test_bad_values():
    with pytest.raises(ScenarioError):
        validate_scenario(dict(GOOD, mu=0))
    with pytest.raises(ScenarioError):
        validate_scenario(dict(GOOD, duration_s=0))
    with pytest.raises(ScenarioError):
        validate_scenario(dict(GOOD, taus=[-1]))


def test_build_session_wires_everything():
    session = build_session(GOOD)
    assert session.mu == 40
    assert len(session.connections) == 2
    assert session.scheme == "dmp"


def test_unknown_queue_discipline_rejected():
    with pytest.raises(ScenarioError, match="queue_discipline"):
        validate_scenario(dict(GOOD, queue_discipline="codel"))
    with pytest.raises(ScenarioError, match="queue_discipline"):
        validate_scenario(dict(GOOD, queue_discipline=None))


def test_queue_discipline_reaches_the_bottleneck():
    from repro.sim.queueing import FQPIEQueue, PIEQueue

    session = build_session(dict(GOOD, queue_discipline="pie"))
    assert session.queue_discipline == "pie"
    for handles in session.topology.paths:
        assert isinstance(handles.bottleneck_fwd.queue, PIEQueue)
        assert isinstance(handles.bottleneck_rev.queue, PIEQueue)
    session = build_session(dict(GOOD, queue_discipline="fq-pie"))
    assert isinstance(
        session.topology.paths[0].bottleneck_fwd.queue, FQPIEQueue)
    # The default stays the paper's drop-tail.
    session = build_session(GOOD)
    assert session.queue_discipline == "droptail"


def test_run_scenario_summary():
    summary = run_scenario(GOOD)
    assert summary["total_packets"] == 800
    assert summary["arrived_packets"] == 800
    assert set(summary["late_fraction"]) == {"2", "4"}
    assert len(summary["flows"]) == 2
    assert sum(summary["path_shares"]) == pytest.approx(1.0)
    # JSON-serialisable end to end.
    json.dumps(summary)


def test_run_scenario_static_scheme():
    scenario = dict(GOOD, scheme="static")
    summary = run_scenario(scenario)
    assert summary["scheme"] == "static"


def test_load_scenario_roundtrip(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(GOOD))
    loaded = load_scenario(str(path))
    assert loaded["mu"] == 40


def test_load_scenario_validates(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"mu": 40}))
    with pytest.raises(ScenarioError):
        load_scenario(str(path))


def test_scenario_reproducibility():
    one = run_scenario(GOOD)
    two = run_scenario(GOOD)
    assert one == two


# ---------------------------------------------------------------------
# Mean-field backend scenarios
# ---------------------------------------------------------------------
MEANFIELD = {
    "mu": 10,
    "duration_s": 20,
    "n_sessions": 200,
    "backend": "meanfield",
    "queue_discipline": "red",
    "taus": [2, 6],
    "paths": [
        {"bandwidth_mbps": 18.0, "delay_ms": 40, "buffer_pkts": 400},
        {"bandwidth_mbps": 18.0, "delay_ms": 40, "buffer_pkts": 400},
    ],
}


def test_meanfield_scenario_runs_deterministically():
    summary = run_scenario(MEANFIELD)
    assert summary["backend"] == "meanfield"
    assert summary["n_sessions"] == 200
    assert set(summary["late_fraction"]) == {"2", "6"}
    for population in summary["late_fraction"].values():
        assert 0.0 <= population["mean"] <= 1.0
        assert population["mean"] == population["p99"]  # degenerate
    assert run_scenario(MEANFIELD) == summary  # no RNG


def test_meanfield_scenario_validation():
    for patch, match in (
            ({"backend": "warp"}, "unknown backend"),
            ({"n_sessions": 1}, "population model"),
            ({"queue_discipline": "pie"}, "supports disciplines"),
            ({"churn_rate": 0.5}, "synchronized"),
            ({"scheme": "static"}, "DMP"),
    ):
        with pytest.raises(ScenarioError, match=match):
            validate_scenario(dict(MEANFIELD, **patch))


def test_builders_reject_meanfield_scenarios():
    with pytest.raises(ScenarioError, match="run_scenario"):
        build_session(MEANFIELD)
    from repro.experiments.scenarios import build_campaign
    with pytest.raises(ScenarioError, match="run_scenario"):
        build_campaign(MEANFIELD)
