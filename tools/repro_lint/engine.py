"""Lint engine: file collection, suppressions, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` +
``tokenize`` only) so the lint gate runs anywhere the repository checks
out — CI installs nothing for it.

Concepts
--------
``SourceFile``
    One parsed module: source text, AST, and the inline suppressions
    found in its comments.
``Project``
    Every collected file, addressable by path relative to the project
    root.  Cross-module rules (probe/schema consistency, cache-key
    completeness) see the whole project; per-file rules scope
    themselves by relative path.
``Finding``
    One diagnostic, rendered ruff-style as ``path:line:col: RULE msg``.

Suppression contract
--------------------
``# repro-lint: disable=RL001`` (or a comma-separated list) on the
*reported* line suppresses matching findings on that line.  Everything
after ``--`` is a free-form rationale; the policy in
``docs/static-analysis.md`` requires one.  A suppression that matched
no finding in the run is reported as RL000 ("unused suppression") so
dead suppressions are cleaned up instead of rotting.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Rule id used for engine-level diagnostics (syntax errors, unused
#: suppressions).  RL000 findings cannot themselves be suppressed.
META_RULE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"(?:\s*--\s*(?P<rationale>.*))?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


@dataclass
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    rationale: str
    used: Set[str] = field(default_factory=set)


@dataclass
class SourceFile:
    """One parsed Python module of the linted project."""

    path: str          # path as reported in findings
    rel: str           # posix path relative to the project root
    text: str
    tree: Optional[ast.Module]
    suppressions: Dict[int, Suppression]
    parse_error: Optional[SyntaxError] = None

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def in_package(self, *prefixes: str) -> bool:
        """True when the file lives under any of the given prefixes."""
        return any(self.rel == p or self.rel.startswith(p.rstrip("/") + "/")
                   for p in prefixes)


class Project:
    """Every file of one lint run, addressable by relative path."""

    def __init__(self, root: str, files: List[SourceFile]):
        self.root = root
        self.files = files
        self._by_rel = {f.rel: f for f in files}

    def get(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    def iter_package(self, *prefixes: str) -> Iterator[SourceFile]:
        for f in self.files:
            if f.in_package(*prefixes):
                yield f


def _find_suppressions(text: str) -> Dict[int, Suppression]:
    """Parse inline suppressions from comment tokens.

    Using :mod:`tokenize` (not a line regex) means a suppression-shaped
    string literal never registers as a suppression.
    """
    out: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = tuple(r.strip() for r in match.group(1).split(","))
            rationale = (match.group("rationale") or "").strip()
            out[tok.start[0]] = Suppression(
                line=tok.start[0], rules=rules, rationale=rationale)
    except tokenize.TokenError:
        pass  # the AST parse will report the real problem
    return out


def load_file(path: str, root: str) -> SourceFile:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    rel = os.path.relpath(os.path.abspath(path),
                          os.path.abspath(root)).replace(os.sep, "/")
    tree: Optional[ast.Module] = None
    error: Optional[SyntaxError] = None
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        error = exc
    return SourceFile(path=path, rel=rel, text=text, tree=tree,
                      suppressions=_find_suppressions(text),
                      parse_error=error)


def collect_paths(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git", ".ruff_cache"))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.add(os.path.join(dirpath, name))
    return sorted(out)


def load_project(paths: Iterable[str],
                 root: Optional[str] = None) -> Project:
    root = root or os.getcwd()
    files = [load_file(p, root) for p in collect_paths(paths)]
    return Project(root, files)


def _all_rules():
    from tools.repro_lint.rules import ALL_RULES
    return ALL_RULES


def lint_project(project: Project,
                 diff_text: Optional[str] = None,
                 rules=None) -> List[Finding]:
    """Run every rule over the project and apply suppressions."""
    findings: List[Finding] = []
    for source in project.files:
        if source.parse_error is not None:
            err = source.parse_error
            findings.append(Finding(
                source.path, err.lineno or 1, (err.offset or 1),
                META_RULE, f"syntax error: {err.msg}"))
    for rule in (rules if rules is not None else _all_rules()):
        findings.extend(rule.check(project))
        if diff_text is not None and hasattr(rule, "check_diff"):
            findings.extend(rule.check_diff(project, diff_text))

    kept: List[Finding] = []
    for finding in sorted(findings,
                          key=lambda f: (f.path, f.line, f.col, f.rule)):
        source = project.get(
            os.path.relpath(os.path.abspath(finding.path),
                            os.path.abspath(project.root))
            .replace(os.sep, "/"))
        suppression = (source.suppressions.get(finding.line)
                       if source is not None else None)
        if (suppression is not None and finding.rule != META_RULE
                and finding.rule in suppression.rules):
            suppression.used.add(finding.rule)
            continue
        kept.append(finding)

    # Unused suppressions are findings themselves: a suppression that
    # no longer suppresses anything is stale and must be deleted.
    for source in project.files:
        for suppression in source.suppressions.values():
            for rule_id in suppression.rules:
                if rule_id not in suppression.used:
                    kept.append(Finding(
                        source.path, suppression.line, 1, META_RULE,
                        f"unused suppression of {rule_id} "
                        "(nothing to suppress on this line)"))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_paths(paths: Iterable[str],
               root: Optional[str] = None,
               diff_text: Optional[str] = None) -> List[Finding]:
    """Convenience wrapper: load + lint in one call."""
    return lint_project(load_project(paths, root=root),
                        diff_text=diff_text)


# ---------------------------------------------------------------------
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names that refer to ``module`` (``import x``/``as y``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
                elif alias.name.startswith(module + "."):
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add(alias.asname
                                or alias.name.split(".")[0])
    return aliases


def imported_names_from(tree: ast.Module, module: str) -> Dict[str, str]:
    """``from module import a as b`` -> {local name: original name}."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names
