"""Exhaustive adversary search for small verification instances.

A second, z3-free certification engine: enumerate *every*
budget-respecting adversary by depth-first search with memoization
over reachable system states, and return the exact optimum together
with a witness.  On the tiny configs used in tests this is complete —
the same guarantee as the SMT engine — so the two engines can certify
each other (and the test suite stays meaningful on machines without
``z3-solver`` installed).

The state space is pruned only by two *dominance* arguments, both
without loss of generality:

* service shortfall is canonicalized: to make a path serve ``s``
  packets this round, the adversary spends the minimal slack that
  achieves ``s`` (spending more slack for the same effect leaves the
  adversary with a subset of its future options);
* the client arrival counter is capped at the stream totals (arrivals
  beyond everything ever due cannot influence lateness).

Everything else — fill splits, loss placement — is enumerated in full.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterator, List, Optional, Tuple

from repro.verify.cex import AdversaryChoices
from repro.verify.spec import VerifySpec

__all__ = [
    "VerifyTooLarge",
    "exhaustive_feasible",
    "max_late_exhaustive",
    "max_starvation_exhaustive",
]

# Static pre-guard used by engine auto-selection; the DFS additionally
# enforces max_states at runtime.
_MAX_PACKETS = 64
_MAX_ROUNDS = 24
_MAX_PATHS = 3
DEFAULT_MAX_STATES = 400_000

# state := (queue, buf, pending, slack_used, loss_used, client)
_State = Tuple[
    Tuple[int, ...],
    Tuple[int, ...],
    Tuple[Tuple[int, ...], ...],
    Tuple[int, ...],
    Tuple[int, ...],
    Tuple[int, ...],
]
# choice := (fill, shortfall, lost)
_Choice = Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]


class VerifyTooLarge(ValueError):
    """The instance exceeds what exhaustive search can enumerate."""


def exhaustive_feasible(spec: VerifySpec) -> bool:
    """Cheap static guard: is this spec small enough to even try?"""
    return (
        spec.total_packets <= _MAX_PACKETS
        and spec.rounds <= _MAX_ROUNDS
        and spec.n_paths <= _MAX_PATHS
    )


def _initial_state(spec: VerifySpec, scheme: str) -> _State:
    kk = spec.n_paths
    streams = 1 if scheme == "dmp" else kk
    return (
        (0,) * streams,
        (0,) * kk,
        tuple((0,) * p.delay for p in spec.paths),
        (0,) * kk,
        (0,) * kk,
        (0,) * streams,
    )


def _client_caps(spec: VerifySpec, scheme: str) -> Tuple[int, ...]:
    if scheme == "dmp":
        return (spec.total_packets,)
    return tuple(
        s * spec.generation_rounds for s in spec.shares
    )


def _fill_splits(
    room: List[int], total: int
) -> Iterator[Tuple[int, ...]]:
    """All ways to place ``total`` packets into buffers with the given
    per-path room (the implicit-pull adversary's choice)."""
    kk = len(room)

    def rec(k: int, left: int, acc: List[int]) -> Iterator[
        Tuple[int, ...]
    ]:
        if k == kk - 1:
            if 0 <= left <= room[k]:
                yield tuple(acc + [left])
            return
        tail_room = sum(room[k + 1:])
        lo = max(0, left - tail_room)
        hi = min(room[k], left)
        for v in range(lo, hi + 1):
            yield from rec(k + 1, left - v, acc + [v])

    yield from rec(0, total, [])


def _served_options(
    buf_after: int, rate: int, slack_left: int
) -> List[Tuple[int, int]]:
    """Canonical (served, shortfall) pairs for one path this round.

    Serving the maximum costs no slack; each packet withheld below
    that costs exactly one slack token (minimal-spend dominance, see
    module docstring)."""
    full = min(buf_after, rate)
    opts = [(full, 0)]
    for served in range(full - 1, -1, -1):
        w = rate - served
        if w > slack_left:
            break
        opts.append((served, w))
    return opts


def _expand(
    spec: VerifySpec, scheme: str, t: int, state: _State,
    caps: Tuple[int, ...],
) -> Iterator[Tuple[_Choice, _State, int, bool]]:
    """Yield (choice, next_state, late_increment, starved) for every
    canonical adversary move in round ``t``."""
    queue, buf, pending, slack_used, loss_used, client = state
    kk = spec.n_paths
    g = spec.generated(t)

    if scheme == "dmp":
        q0 = queue[0] + g
        room = [spec.paths[k].buffer - buf[k] for k in range(kk)]
        total_fill = min(q0, sum(room))
        fills = list(_fill_splits(room, total_fill))
        queues_after = [(q0 - total_fill,)] * len(fills)
    else:
        qs = [
            queue[k] + (spec.shares[k] if g else 0)
            for k in range(kk)
        ]
        room = [spec.paths[k].buffer - buf[k] for k in range(kk)]
        x = tuple(min(qs[k], room[k]) for k in range(kk))
        fills = [x]
        queues_after = [
            tuple(qs[k] - x[k] for k in range(kk))
        ]

    for x, q_after in zip(fills, queues_after):
        buf_after = [buf[k] + x[k] for k in range(kk)]
        per_path_sw: List[List[Tuple[int, int]]] = [
            _served_options(
                buf_after[k],
                spec.paths[k].rate,
                spec.paths[k].slack - slack_used[k],
            )
            for k in range(kk)
        ]
        for sw in _product(per_path_sw):
            served = tuple(s for s, _ in sw)
            shortfall = tuple(w for _, w in sw)
            slack_next = tuple(
                slack_used[k] + shortfall[k] for k in range(kk)
            )
            per_path_loss = [
                range(
                    0,
                    min(
                        served[k],
                        spec.paths[k].loss - loss_used[k],
                    ) + 1,
                )
                for k in range(kk)
            ]
            for lam in _product_ranges(per_path_loss):
                loss_next = tuple(
                    loss_used[k] + lam[k] for k in range(kk)
                )
                delivered = tuple(
                    served[k] - lam[k] for k in range(kk)
                )
                buf_next = tuple(
                    buf_after[k] - delivered[k] for k in range(kk)
                )
                arrived = []
                pend_next: List[Tuple[int, ...]] = []
                for k in range(kk):
                    d = spec.paths[k].delay
                    if d == 0:
                        arrived.append(delivered[k])
                        pend_next.append(())
                    else:
                        arrived.append(pending[k][0])
                        shifted = list(pending[k][1:]) + [0]
                        shifted[d - 1] += delivered[k]
                        pend_next.append(tuple(shifted))

                late_inc = 0
                starved = False
                if scheme == "dmp":
                    a = min(client[0] + sum(arrived), caps[0])
                    client_next: Tuple[int, ...] = (a,)
                    due = spec.due_end(t)
                    inc = due - spec.due_end(t - 1)
                    deficit = max(0, due - a)
                    late_inc = min(inc, deficit)
                    starved = t >= spec.tau and deficit > 0
                else:
                    cl = []
                    for k in range(kk):
                        a = min(client[k] + arrived[k], caps[k])
                        cl.append(a)
                        due_k = spec.path_due_end(k, t)
                        inc = due_k - spec.path_due_end(k, t - 1)
                        deficit = max(0, due_k - a)
                        late_inc += min(inc, deficit)
                        starved = starved or (
                            t >= spec.tau and deficit > 0
                        )
                    client_next = tuple(cl)

                nstate: _State = (
                    q_after, buf_next, tuple(pend_next),
                    slack_next, loss_next, client_next,
                )
                yield (
                    (x, shortfall, lam), nstate, late_inc, starved,
                )


def _product(
    pools: List[List[Tuple[int, int]]]
) -> Iterator[Tuple[Tuple[int, int], ...]]:
    if not pools:
        yield ()
        return
    for head in pools[0]:
        for tail in _product(pools[1:]):
            yield (head,) + tail


def _product_ranges(
    pools: List[range],
) -> Iterator[Tuple[int, ...]]:
    if not pools:
        yield ()
        return
    for head in pools[0]:
        for tail in _product_ranges(pools[1:]):
            yield (head,) + tail


def _choices_from_path(
    spec: VerifySpec, scheme: str, path: List[_Choice]
) -> AdversaryChoices:
    return AdversaryChoices(
        shortfall=tuple(c[1] for c in path),
        lost=tuple(c[2] for c in path),
        fill=tuple(c[0] for c in path)
        if scheme == "dmp" else None,
    )


def max_late_exhaustive(
    spec: VerifySpec,
    scheme: str = "dmp",
    max_states: int = DEFAULT_MAX_STATES,
) -> Tuple[int, AdversaryChoices]:
    """Exact maximum late count over all budget-respecting adversary
    traces, with a witness achieving it."""
    if not exhaustive_feasible(spec):
        raise VerifyTooLarge(
            f"spec too large for exhaustive search (N="
            f"{spec.total_packets}, T={spec.rounds}, "
            f"K={spec.n_paths}); use the z3 engine"
        )
    caps = _client_caps(spec, scheme)
    memo: Dict[
        Tuple[int, _State], Tuple[int, Optional[_Choice],
                                  Optional[_State]]
    ] = {}
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        def best(t: int, state: _State) -> int:
            if t == spec.rounds:
                return 0
            key = (t, state)
            hit = memo.get(key)
            if hit is not None:
                return hit[0]
            if len(memo) >= max_states:
                raise VerifyTooLarge(
                    f"exhaustive search exceeded {max_states} "
                    "states; use the z3 engine"
                )
            best_v = -1
            best_c: Optional[_Choice] = None
            best_n: Optional[_State] = None
            for choice, nstate, late_inc, _ in _expand(
                spec, scheme, t, state, caps
            ):
                v = late_inc + best(t + 1, nstate)
                if v > best_v:
                    best_v, best_c, best_n = v, choice, nstate
            memo[key] = (best_v, best_c, best_n)
            return best_v

        s0 = _initial_state(spec, scheme)
        value = best(0, s0)
        path: List[_Choice] = []
        t, state = 0, s0
        while t < spec.rounds:
            _, choice, nstate = memo[(t, state)]
            assert choice is not None and nstate is not None
            path.append(choice)
            state = nstate
            t += 1
        return value, _choices_from_path(spec, scheme, path)
    finally:
        sys.setrecursionlimit(old_limit)


def max_starvation_exhaustive(
    spec: VerifySpec,
    scheme: str = "dmp",
    max_states: int = DEFAULT_MAX_STATES,
) -> Tuple[int, AdversaryChoices]:
    """Exact maximum number of *consecutive* starved playout rounds
    (rounds ``t >= tau`` with a due-packet deficit), with witness."""
    if not exhaustive_feasible(spec):
        raise VerifyTooLarge(
            f"spec too large for exhaustive search (N="
            f"{spec.total_packets}, T={spec.rounds}, "
            f"K={spec.n_paths}); use the z3 engine"
        )
    caps = _client_caps(spec, scheme)
    memo: Dict[
        Tuple[int, _State, int],
        Tuple[int, Optional[_Choice], Optional[_State]],
    ] = {}
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        def best(t: int, state: _State, streak: int) -> int:
            if t == spec.rounds:
                return 0
            key = (t, state, streak)
            hit = memo.get(key)
            if hit is not None:
                return hit[0]
            if len(memo) >= max_states:
                raise VerifyTooLarge(
                    f"exhaustive search exceeded {max_states} "
                    "states; use the z3 engine"
                )
            best_v = -1
            best_c: Optional[_Choice] = None
            best_n: Optional[_State] = None
            for choice, nstate, _, starved in _expand(
                spec, scheme, t, state, caps
            ):
                s2 = streak + 1 if starved else 0
                v = max(s2, best(t + 1, nstate, s2))
                if v > best_v:
                    best_v, best_c, best_n = v, choice, nstate
            memo[key] = (best_v, best_c, best_n)
            return best_v

        s0 = _initial_state(spec, scheme)
        value = best(0, s0, 0)
        path: List[_Choice] = []
        t, state, streak = 0, s0, 0
        while t < spec.rounds:
            _, choice, nstate = memo[(t, state, streak)]
            assert choice is not None and nstate is not None
            path.append(choice)
            # Recompute the streak transition for the stored child.
            for c2, n2, _, starved in _expand(
                spec, scheme, t, state, caps
            ):
                if c2 == choice and n2 == nstate:
                    streak = streak + 1 if starved else 0
                    break
            state = nstate
            t += 1
        return value, _choices_from_path(spec, scheme, path)
    finally:
        sys.setrecursionlimit(old_limit)
