"""Certified worst-case envelopes for DMP streaming (SMT + search).

Where the rest of the repository *estimates* (packet simulation,
Monte-Carlo kernels, mean-field limits), this package *certifies*:
given integer network-calculus budgets per path, its queries return
exact worst-case quantities together with an adversarial witness trace
and an implicit UNSAT certificate one packet above.

Import surface is dependency-light: ``z3-solver`` (the ``verify``
extra) is only imported when a query actually runs on the z3 engine;
small instances fall back to complete enumeration.
"""

from repro.verify.cex import (AdversaryChoices, Trace, TraceRound,
                              TraceViolation, format_trace,
                              load_trace_jsonl, replay_trace,
                              trace_to_jsonl, write_trace_jsonl)
from repro.verify.exhaustive import (VerifyTooLarge,
                                     exhaustive_feasible)
from repro.verify.queries import (EngineMismatchError, EnvelopeResult,
                                  SchemeComparison, StarvationResult,
                                  compare_schemes, have_z3,
                                  max_late_envelope, max_starvation,
                                  resolve_engine, small_specs,
                                  spec_from_flows)
from repro.verify.spec import PathBudget, VerifySpec

__all__ = [
    "AdversaryChoices",
    "EngineMismatchError",
    "EnvelopeResult",
    "PathBudget",
    "SchemeComparison",
    "StarvationResult",
    "Trace",
    "TraceRound",
    "TraceViolation",
    "VerifySpec",
    "VerifyTooLarge",
    "compare_schemes",
    "exhaustive_feasible",
    "format_trace",
    "have_z3",
    "load_trace_jsonl",
    "max_late_envelope",
    "max_starvation",
    "replay_trace",
    "resolve_engine",
    "small_specs",
    "spec_from_flows",
    "trace_to_jsonl",
    "write_trace_jsonl",
]
