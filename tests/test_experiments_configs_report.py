"""Tests for experiment configs and report rendering."""

import os

import pytest

from repro.experiments.configs import (
    ALL_SETTINGS,
    CALIBRATED_CONFIGS,
    CORRELATED_SETTINGS,
    HETEROGENEOUS_SETTINGS,
    HOMOGENEOUS_SETTINGS,
    PAPER_TABLE1,
)
from repro.experiments.report import render_series, render_table, save_output


def test_paper_table1_matches_publication():
    config = PAPER_TABLE1[1]
    assert (config.ftp_flows, config.http_flows) == (9, 40)
    assert config.delay_ms == 40
    assert config.bandwidth_mbps == 3.7
    assert config.buffer_pkts == 50
    assert PAPER_TABLE1[4].buffer_pkts == 30
    assert PAPER_TABLE1[3].ftp_flows == 19


def test_calibrated_keeps_structure():
    for idx in (1, 2, 3, 4):
        paper = PAPER_TABLE1[idx]
        ours = CALIBRATED_CONFIGS[idx]
        assert ours.bandwidth_mbps == paper.bandwidth_mbps
        assert ours.delay_ms == paper.delay_ms
        assert ours.buffer_pkts == paper.buffer_pkts
        assert ours.http_flows == paper.http_flows
        assert ours.ftp_flows <= paper.ftp_flows


def test_spec_conversion():
    spec = PAPER_TABLE1[2].spec
    assert spec.bandwidth_bps == pytest.approx(3.7e6)
    assert spec.delay_s == pytest.approx(0.001)
    assert spec.buffer_pkts == 50


def test_settings_mu_from_table2():
    assert HOMOGENEOUS_SETTINGS["2-2"].mu == 50
    assert HOMOGENEOUS_SETTINGS["3-3"].mu == 30
    assert HOMOGENEOUS_SETTINGS["4-4"].mu == 80
    assert HETEROGENEOUS_SETTINGS["1-3"].mu == 40
    assert HETEROGENEOUS_SETTINGS["3-4"].mu == 60


def test_correlated_settings_shared():
    for setting in CORRELATED_SETTINGS.values():
        assert setting.shared_bottleneck
        assert len(setting.configs) == 2


def test_path_configs_resolve():
    setting = HETEROGENEOUS_SETTINGS["1-2"]
    paths = setting.path_configs()
    assert len(paths) == 2
    assert paths[0].bottleneck.delay_s == pytest.approx(0.040)
    assert paths[1].bottleneck.delay_s == pytest.approx(0.001)


def test_all_settings_unique_names():
    assert len(ALL_SETTINGS) == 12


def test_render_table_alignment():
    text = render_table(["name", "value"],
                        [["a", 1.0], ["bbbb", 0.00012]],
                        title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[2]
    assert "1.20e-04" in text


def test_render_table_none_as_dash():
    text = render_table(["x"], [[None]])
    assert "-" in text


def test_render_series():
    text = render_series("curves", {"a": [(1, 0.5), (2, 0.25)]},
                         x_label="tau", y_label="f")
    assert "curves" in text
    assert "tau" in text
    assert "0.25" in text


def test_save_output(tmp_path):
    path = save_output("demo.txt", "hello\n", directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as handle:
        assert handle.read() == "hello\n"
