"""Replicated validation runs (the paper's 30-run methodology).

The paper runs each setting 30 times for 10,000 simulated seconds.
That is affordable in ns-2's C++ core but not in a pure-Python packet
simulator, so the harness scales by profile:

====== ===== ============ =================================
profile runs duration (s) selected by
====== ===== ============ =================================
quick      3         300  REPRO_SCALE=quick (default)
full       8         600  REPRO_SCALE=full
paper     30       10000  REPRO_SCALE=paper
====== ===== ============ =================================

Shapes (model-vs-simulation agreement within the paper's own 10x band,
monotone decay in tau, DMP > static) are preserved at every profile;
absolute resolution of very small late fractions improves with scale.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.experiments.cache import resolve_cache, tau_key
from repro.experiments.configs import Setting
from repro.experiments.parallel import (
    ModelTask,
    ReplicationExecutor,
    RunSpec,
)
from repro.model.mc_kernel import resolve_kernel
from repro.model.tcp_chain import FlowParams

DEFAULT_TAUS = (4.0, 6.0, 8.0, 10.0)

# Floor for measured loss rates fed into the model: a run short enough
# to observe zero loss events still needs a valid FlowParams.
MIN_MEASURED_P = 1e-4
MIN_MEASURED_TO = 1.0

# Loss model used when the chain is fed parameters measured on THIS
# simulator: drop-tail losses here are mostly single-packet events,
# which the "sparse" variant captures (calibrated to within ~7% of the
# simulator's backlogged-flow throughput; the paper-faithful "bursty"
# variant sits ~10% low).  Section-7 sweeps keep "bursty".
MEASURED_LOSS_MODEL = "sparse"


@dataclass(frozen=True)
class ScaleProfile:
    name: str
    runs: int
    duration_s: float
    model_horizon_s: float


_PROFILES = {
    "quick": ScaleProfile("quick", runs=3, duration_s=300.0,
                          model_horizon_s=20000.0),
    "full": ScaleProfile("full", runs=8, duration_s=600.0,
                         model_horizon_s=40000.0),
    "paper": ScaleProfile("paper", runs=30, duration_s=10000.0,
                          model_horizon_s=100000.0),
}


def scale_profile(name: Optional[str] = None) -> ScaleProfile:
    """Resolve the scale profile (argument > $REPRO_SCALE > quick)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale profile {name!r}; "
            f"choose from {sorted(_PROFILES)}") from None


@dataclass
class TauPoint:
    """Aggregated result at one startup delay."""

    tau: float
    sim_mean: float
    sim_ci95: float
    sim_arrival_order_mean: float
    model_f: float
    model_stderr: float

    @property
    def match(self) -> bool:
        """The paper's acceptance test: CI hit or within 10x."""
        lo = self.sim_mean - self.sim_ci95
        hi = self.sim_mean + self.sim_ci95
        if lo <= self.model_f <= hi:
            return True
        if self.sim_mean <= 0.0:
            return self.model_f < 1e-3
        if self.model_f <= 0.0:
            return self.sim_mean < 1e-3
        ratio = self.model_f / self.sim_mean
        return 0.1 < ratio < 10.0


@dataclass
class ReplicatedRun:
    """Everything measured for one validation setting."""

    setting: Setting
    profile: ScaleProfile
    scheme: str
    flow_params: List[FlowParams]
    measured: List[dict]
    points: List[TauPoint]
    per_run_late: Dict[float, List[float]] = field(default_factory=dict)
    per_run_counters: List[dict] = field(default_factory=list)

    def point(self, tau: float) -> TauPoint:
        for pt in self.points:
            if pt.tau == tau:
                return pt
        raise KeyError(f"no point at tau={tau}")

    @property
    def all_match(self) -> bool:
        return all(pt.match for pt in self.points)


# Student-t 97.5% quantiles keyed by degrees of freedom; intermediate
# dof are interpolated linearly in 1/dof (the standard textbook rule),
# with 1.96 as the dof -> infinity anchor.
_T_TABLE = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
            6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
            11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
            20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000,
            120: 1.980}
_T_INF = 1.960


def _t_ci95(dof: int) -> float:
    """97.5% Student-t quantile for ``dof`` degrees of freedom."""
    if dof < 1:
        raise ValueError("dof must be >= 1")
    exact = _T_TABLE.get(dof)
    if exact is not None:
        return exact
    keys = sorted(_T_TABLE)
    hi_key = keys[-1]
    if dof > hi_key:
        lo_key, lo_t = hi_key, _T_TABLE[hi_key]
        hi_inv, hi_t = 0.0, _T_INF
    else:
        lo_key = max(k for k in keys if k < dof)
        hi_key = min(k for k in keys if k > dof)
        lo_t = _T_TABLE[lo_key]
        hi_inv, hi_t = 1.0 / hi_key, _T_TABLE[hi_key]
    lo_inv = 1.0 / lo_key
    frac = (lo_inv - 1.0 / dof) / (lo_inv - hi_inv)
    return lo_t + frac * (hi_t - lo_t)


def _mean_ci95(values: Sequence[float]) -> tuple:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, float("inf")
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, _t_ci95(n - 1) * math.sqrt(var / n)


def run_setting(setting: Setting,
                taus: Sequence[float] = DEFAULT_TAUS,
                profile: Optional[ScaleProfile] = None,
                scheme: str = "dmp",
                seed0: int = 1000,
                send_buffer_pkts: int = 16,
                run_model: bool = True,
                max_workers: Optional[int] = None,
                cache=None,
                counters: bool = False,
                executor: Optional[ReplicationExecutor] = None,
                mc_kernel: Optional[str] = None) -> ReplicatedRun:
    """Run one validation setting: N simulations + the model.

    The model is fed the *measured* per-path (p, R, T_O) averaged over
    the replications — exactly the paper's methodology for Tables 2-3
    and Figs. 4-7.

    Replications (and the per-tau model solves) fan out over a process
    pool when ``max_workers > 1`` (default: the value wired by
    :func:`repro.experiments.parallel.configure` or ``$REPRO_WORKERS``,
    else serial); seeding stays ``seed0 + run`` regardless, so parallel
    results are bit-identical to serial ones.  ``cache`` is a
    :class:`repro.experiments.cache.ResultCache` (``None`` = the
    configured default, ``False`` = bypass): already-simulated
    (setting, seed) records are reused instead of re-simulated.
    ``mc_kernel`` picks the model MC engine ("vectorized"/"legacy";
    ``None`` = the configured default) and is resolved here so worker
    processes and cache keys see a concrete kernel name.
    """
    if setting.n_sessions > 1:
        raise ValueError(
            f"setting {setting.name!r} has n_sessions="
            f"{setting.n_sessions}; use "
            "repro.experiments.campaign.run_campaign for "
            "multi-session settings (the per-path model validation "
            "below has no population analogue)")
    if setting.backend != "packet":
        raise ValueError(
            f"setting {setting.name!r} selects backend="
            f"{setting.backend!r}; run_setting is packet-sim only — "
            "the mean-field backend is a population model, use "
            "repro.experiments.campaign.run_campaign")
    if profile is None:
        profile = scale_profile()
    if executor is None:
        executor = ReplicationExecutor(max_workers=max_workers)
    tel = telemetry.current()
    with tel.span("setting", label=setting.name, scheme=scheme,
                  profile=profile.name, runs=profile.runs,
                  taus=len(taus)):
        cache = resolve_cache(cache)

        taus = [float(tau) for tau in taus]
        specs = [RunSpec(setting=setting, duration_s=profile.duration_s,
                         scheme=scheme, seed=seed0 + run,
                         send_buffer_pkts=send_buffer_pkts,
                         taus=tuple(taus), counters=counters)
                 for run in range(profile.runs)]
        records: List[Optional[dict]] = [
            cache.get_run(spec) if cache else None for spec in specs]
        missing = [idx for idx, rec in enumerate(records) if rec is None]
        fresh = executor.run_replications([specs[idx] for idx in missing])
        for idx, record in zip(missing, fresh):
            records[idx] = record
            if cache:
                cache.put_run(specs[idx], record)

        per_tau: Dict[float, List[float]] = {
            tau: [rec["taus"][tau_key(tau)][0] for rec in records]
            for tau in taus}
        per_tau_ao: Dict[float, List[float]] = {
            tau: [rec["taus"][tau_key(tau)][1] for rec in records]
            for tau in taus}
        stats_acc: List[List[dict]] = [rec["flow_stats"] for rec in records]

        # Average measured flow parameters over the replications.
        k = len(stats_acc[0])
        measured: List[dict] = []
        for idx in range(k):
            p_mean = sum(s[idx]["loss_event_estimate"]
                         for s in stats_acc) / profile.runs
            rtt_mean = sum(s[idx]["mean_rtt"]
                           for s in stats_acc) / profile.runs
            to_mean = sum(s[idx]["timeout_ratio"]
                          for s in stats_acc) / profile.runs
            measured.append({"p": p_mean, "rtt": rtt_mean, "to": to_mean})

        flow_params = [
            FlowParams(p=max(m["p"], MIN_MEASURED_P),
                       rtt=m["rtt"],
                       to_ratio=max(m["to"], MIN_MEASURED_TO),
                       loss_model=MEASURED_LOSS_MODEL)
            for m in measured]

        estimates = {}
        if run_model:
            tasks = [ModelTask(flows=tuple(flow_params), mu=setting.mu,
                               tau=tau, horizon_s=profile.model_horizon_s,
                               seed=seed0,
                               mc_kernel=resolve_kernel(mc_kernel))
                     for tau in taus]
            cached = [cache.get_model(task) if cache else None
                      for task in tasks]
            unsolved = [idx for idx, est in enumerate(cached)
                        if est is None]
            solved = executor.solve_models(
                [tasks[idx] for idx in unsolved])
            for idx, estimate in zip(unsolved, solved):
                cached[idx] = estimate
                if cache:
                    cache.put_model(tasks[idx], estimate)
            estimates = dict(zip(taus, cached))

        points: List[TauPoint] = []
        for tau in taus:
            sim_mean, ci = _mean_ci95(per_tau[tau])
            ao_mean = sum(per_tau_ao[tau]) / len(per_tau_ao[tau])
            if run_model:
                estimate = estimates[tau]
                model_f, model_se = estimate.late_fraction, estimate.stderr
            else:
                model_f, model_se = float("nan"), float("nan")
            points.append(TauPoint(
                tau=tau, sim_mean=sim_mean, sim_ci95=ci,
                sim_arrival_order_mean=ao_mean,
                model_f=model_f, model_stderr=model_se))

        return ReplicatedRun(
            setting=setting, profile=profile, scheme=scheme,
            flow_params=flow_params, measured=measured, points=points,
            per_run_late=per_tau,
            per_run_counters=[rec.get("counters", {}) for rec in records]
            if counters else [])
