"""Tests for the finite-video (transient) model solver."""

import pytest

from repro.model.dmp_model import DmpModel
from repro.model.tcp_chain import FlowParams

TYPICAL = FlowParams(p=0.02, rtt=0.15, to_ratio=2.0)
SMALL = FlowParams(p=0.05, rtt=0.2, to_ratio=2.0, wmax=4)


def test_transient_validation_errors():
    model = DmpModel([TYPICAL], mu=20, tau=2.0)
    with pytest.raises(ValueError):
        model.late_fraction_transient(video_s=0)
    with pytest.raises(ValueError):
        model.late_fraction_transient(video_s=10, replications=0)


def test_transient_in_unit_interval_and_reproducible():
    model = DmpModel([TYPICAL, TYPICAL], mu=40, tau=3.0)
    a = model.late_fraction_transient(video_s=100, replications=5,
                                      seed=3)
    b = model.late_fraction_transient(video_s=100, replications=5,
                                      seed=3)
    assert 0.0 <= a.late_fraction <= 1.0
    assert a.late_fraction == b.late_fraction
    assert a.method == "transient-mc"


def test_transient_decreases_with_tau():
    model = DmpModel([TYPICAL, TYPICAL], mu=35, tau=1.0)
    f_short = model.with_tau(1.0).late_fraction_transient(
        video_s=200, replications=8, seed=1).late_fraction
    f_long = model.with_tau(8.0).late_fraction_transient(
        video_s=200, replications=8, seed=1).late_fraction
    assert f_long <= f_short + 1e-9


def test_transient_high_when_underprovisioned():
    # sigma_a < mu: most packets of a long video are late.
    model = DmpModel([TYPICAL], mu=100, tau=2.0)
    est = model.late_fraction_transient(video_s=300, replications=3,
                                        seed=2)
    assert est.late_fraction > 0.3


def test_transient_below_stationary_in_marginal_regime():
    """Finite videos see fewer rare deep excursions than t->infinity,
    so the transient estimate is (weakly) below the stationary one."""
    model = DmpModel([SMALL, SMALL], mu=16, tau=2.0)
    transient = model.late_fraction_transient(
        video_s=300, replications=10, seed=4).late_fraction
    stationary = model.late_fraction_mc(horizon_s=30000,
                                        seed=4).late_fraction
    assert transient <= stationary * 2.0 + 1e-3


def test_transient_zero_when_overprovisioned():
    model = DmpModel([SMALL, SMALL], mu=4, tau=4.0)
    est = model.late_fraction_transient(video_s=200, replications=5,
                                        seed=5)
    assert est.late_fraction < 1e-3
