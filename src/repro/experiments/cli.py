"""Command-line runner for the paper's experiments.

Regenerate any table or figure of the paper without pytest:

    python -m repro.experiments.cli list
    python -m repro.experiments.cli fig8
    python -m repro.experiments.cli table2 --scale full -o out/
    python -m repro.experiments.cli all

Run one fully instrumented session (the observability bus):

    python -m repro.experiments.cli trace --setting 2-2 --seed 7 \\
        --duration 60 --trace-out events.jsonl --timeseries curves.csv

Run a multi-session campaign (N concurrent sessions, one bottleneck):

    python -m repro.experiments.cli campaign --sessions 50 \\
        --churn 0.5 --queue-discipline red --duration 60

Campaign QoE health (rollups, flight recorder, exporters):

    python -m repro.experiments.cli campaign --sessions 50 \\
        --churn 0.5 --record-trigger stall:1.0 --record-out dumps/ \\
        --prometheus-out health.prom --dashboard-out health.html

Builder targets run under a campaign telemetry session
(:mod:`repro.telemetry`): a summary table prints at the end of every
run (disable with --no-telemetry-summary), ``--telemetry-out``
streams the span/metric log as JSONL, and ``--trace-chrome`` writes a
Chrome ``trace_event`` file loadable in Perfetto:

    python -m repro.experiments.cli fig8 --workers 4 \\
        --telemetry-out telemetry.jsonl --trace-chrome trace.json

Scale profiles (also via $REPRO_SCALE): quick (default), full, paper.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro import telemetry
from repro.experiments import cache as result_cache
from repro.experiments import parallel
from repro.experiments.configs import ALL_SETTINGS
from repro.experiments.figures import BUILDERS
from repro.experiments.optional_deps import (EXIT_MISSING_DEPENDENCY,
                                             MissingDependencyError)
from repro.experiments.report import save_output
from repro.experiments.runner import scale_profile
from repro.model import mc_kernel, meanfield
from repro.sim.queueing import QUEUE_DISCIPLINES


def _run_trace(args) -> int:
    """Run one instrumented session and report what the bus saw."""
    from repro.core.session import StreamingSession

    setting = dataclasses.replace(
        ALL_SETTINGS[args.setting],
        queue_discipline=args.queue_discipline)
    session = StreamingSession(
        mu=setting.mu, duration_s=args.duration,
        paths=setting.path_configs(), scheme=args.scheme,
        shared_bottleneck=setting.shared_bottleneck, seed=args.seed,
        queue_discipline=setting.queue_discipline)
    counters = session.attach_counters()
    jsonl = session.attach_jsonl(args.trace_out) \
        if args.trace_out else None
    sampler = session.attach_timeseries() if args.timeseries else None

    # Wall clock here times the *solver* for the operator; it never
    # feeds simulated time or results.
    started = time.time()  # repro-lint: disable=RL001 -- progress timer
    result = session.run()
    elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer

    if jsonl is not None:
        jsonl.close()
        print(f"[wrote {jsonl.lines_written} events to "
              f"{args.trace_out}]")
    if sampler is not None:
        with open(args.timeseries, "w", encoding="utf-8") as handle:
            rows = sampler.to_csv(handle)
        print(f"[wrote {rows} samples to {args.timeseries}]")
    print(f"setting {setting.name} scheme={args.scheme} "
          f"queue={setting.queue_discipline} "
          f"seed={args.seed} duration={args.duration:g}s "
          f"({elapsed:.1f}s wall)")
    print(f"delivered {len(result.arrivals)} "
          f"of {result.total_packets} packets; "
          f"path shares {[round(s, 3) for s in result.path_shares]}")
    print("probe event counts:")
    print(counters.summary())
    return 0


def _run_meanfield(args) -> int:
    """Solve one mean-field campaign and report population metrics."""
    from repro.experiments.campaign import meanfield_spec_for_setting

    setting = dataclasses.replace(
        ALL_SETTINGS[args.setting],
        queue_discipline=args.queue_discipline,
        n_sessions=args.sessions, backend="meanfield")
    spec = meanfield_spec_for_setting(setting, args.duration)

    started = time.time()  # repro-lint: disable=RL001 -- progress timer
    solution = meanfield.solve_meanfield(spec)
    elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer

    print(f"mean-field campaign setting {setting.name} scheme=dmp "
          f"queue={setting.queue_discipline} "
          f"sessions={args.sessions} duration={args.duration:g}s")
    print(f"solved in {elapsed:.2f}s wall (cost independent of N); "
          f"mean drop prob {solution.mean_drop_prob:.4f}, "
          f"mean queue {solution.mean_queue_pkts:.1f} pkts")
    print("late fraction (tau: population value — the limit "
          "distribution is degenerate):")
    for tau in (4.0, 6.0, 8.0, 10.0):
        print(f"  {tau:g}s: {solution.late_fraction(tau):.4f}")
    return 0


def _run_campaign(args) -> int:
    """Run one multi-session campaign and report population metrics."""
    import json as json_module

    from repro.core.campaign import MultiSessionCampaign
    from repro.obs import export as health_export
    from repro.obs.recorder import parse_trigger

    setting = dataclasses.replace(
        ALL_SETTINGS[args.setting],
        queue_discipline=args.queue_discipline)
    path = setting.path_configs()[0]
    campaign = MultiSessionCampaign(
        mu=setting.mu, duration_s=args.duration,
        n_sessions=args.sessions,
        bottleneck=path.bottleneck,
        paths_per_session=len(setting.configs),
        scheme=args.scheme,
        queue_discipline=setting.queue_discipline,
        seed=args.seed, churn_rate=args.churn,
        n_ftp=path.n_ftp, n_http=path.n_http,
        service_batch=args.service_batch)
    counters = campaign.attach_counters()
    jsonl = campaign.attach_jsonl(args.trace_out) \
        if args.trace_out else None
    # Recorder before aggregator: subscribe order is delivery order,
    # so the stall-causing arrival is already in the ring when the
    # aggregator's nested health.stall emission fires the trigger.
    recorder = campaign.attach_recorder(
        triggers=[parse_trigger(spec)
                  for spec in args.record_trigger]) \
        if args.record_trigger else None
    want_health = bool(args.health_out or args.prometheus_out
                       or args.dashboard_out or recorder is not None)
    aggregator = campaign.attach_health(tau=args.health_tau) \
        if want_health else None

    started = time.time()  # repro-lint: disable=RL001 -- progress timer
    result = campaign.run()
    elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer

    if jsonl is not None:
        jsonl.close()
        print(f"[wrote {jsonl.lines_written} events to "
              f"{args.trace_out}]")
    rollup = aggregator.rollup() if aggregator is not None else None
    if rollup is not None and args.health_out:
        health_export.write_text(
            args.health_out,
            json_module.dumps(rollup, indent=1) + "\n")
        print(f"[wrote health rollup to {args.health_out}]")
    if rollup is not None and args.prometheus_out:
        health_export.write_text(
            args.prometheus_out,
            health_export.prometheus_exposition(rollup))
        print(f"[wrote Prometheus exposition to "
              f"{args.prometheus_out}]")
    if rollup is not None and args.dashboard_out:
        health_export.write_text(
            args.dashboard_out,
            health_export.html_dashboard(
                rollup, title=f"Campaign {args.setting} "
                              f"({args.sessions} sessions)"))
        print(f"[wrote dashboard to {args.dashboard_out}]")
    if recorder is not None:
        print("flight recorder:")
        print(recorder.summary())
        if recorder.frozen:
            paths = recorder.dump(args.record_out)
            print(f"[wrote {len(paths)} trigger window(s) to "
                  f"{args.record_out}/]")
    arrival = (f"churn rate {args.churn:g}/s" if args.churn > 0
               else "staggered starts")
    rate = result.events_processed / elapsed if elapsed > 0 \
        else float("inf")
    print(f"campaign setting {setting.name} scheme={args.scheme} "
          f"queue={setting.queue_discipline} seed={args.seed} "
          f"sessions={args.sessions} ({arrival}) "
          f"duration={args.duration:g}s")
    print(f"{result.events_processed} events in {elapsed:.1f}s wall "
          f"({rate:,.0f} events/s)")
    received = sum(s.received for s in result.sessions)
    total = sum(s.total_packets for s in result.sessions)
    print(f"delivered {received} of {total} packets across "
          f"{result.n_sessions} sessions; bottleneck drop fraction "
          f"{result.bottleneck_drop_fraction:.4f}")
    print("late fraction across sessions (tau: mean/p50/p95/p99):")
    for tau in (4.0, 6.0, 8.0, 10.0):
        pop = result.population(tau)
        print(f"  {tau:g}s: {pop['mean']:.4f} / {pop['p50']:.4f} / "
              f"{pop['p95']:.4f} / {pop['p99']:.4f}")
    if rollup is not None:
        print(health_export.health_table(rollup, max_rows=10))
    print("probe event counts:")
    print(counters.summary())
    return 0


def _report_missing_dependency(exc: MissingDependencyError) -> int:
    """The shared error path for optional features: one message shape,
    one exit code, one install hint — regardless of which target hit
    the missing package."""
    print(f"error: {exc}", file=sys.stderr)
    print(exc.hint(), file=sys.stderr)
    return EXIT_MISSING_DEPENDENCY


def _run_verify(args, parser) -> int:
    """Certify a worst-case late-packet envelope and show the trace."""
    import math

    from repro.verify import (VerifySpec, PathBudget, compare_schemes,
                              format_trace, max_late_envelope,
                              max_starvation, resolve_engine,
                              write_trace_jsonl)

    if args.paths < 1:
        parser.error("--paths must be >= 1")
    if args.mu_round < 1:
        parser.error("--mu-round must be >= 1")
    if args.rounds <= args.tau:
        parser.error("--rounds must exceed --tau")
    rate = max(1, math.ceil(args.ratio * args.mu_round / args.paths))
    slack = args.slack if args.slack is not None else rate
    try:
        spec = VerifySpec(
            mu_r=args.mu_round, tau=args.tau, rounds=args.rounds,
            paths=tuple(
                PathBudget(rate=rate, slack=slack,
                           loss=args.loss_budget,
                           delay=args.path_delay,
                           buffer=args.path_buffer)
                for _ in range(args.paths)
            ),
            label="cli",
        )
    except ValueError as exc:
        parser.error(str(exc))
    cache = False if args.no_cache else (
        result_cache.ResultCache(args.cache_dir) if args.cache_dir
        else None)
    engine = resolve_engine(spec, args.engine)

    started = time.time()  # repro-lint: disable=RL001 -- progress timer
    print(f"verify[{engine}] K={args.paths} rate={rate}/round "
          f"(ratio {rate * args.paths / args.mu_round:g}) "
          f"slack={slack} loss={args.loss_budget} "
          f"mu_r={args.mu_round} tau={args.tau} T={args.rounds}")
    if args.query == "compare":
        cmp = compare_schemes(spec, engine=engine, cache=cache)
        elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer
        for res in (cmp.dmp, cmp.static):
            print(f"  {res.scheme}: certified max late "
                  f"{res.max_late}/{res.total_packets} "
                  f"({res.late_fraction:.3f}); >= "
                  f"{res.unsat_threshold} is UNSAT")
        verdict = ("DMP strictly better"
                   if cmp.dmp_strictly_better else
                   "no strict DMP advantage on this instance")
        print(f"  advantage {cmp.advantage:+d} ({verdict}; "
              f"{elapsed:.1f}s wall)")
        witness = cmp.static.witness
    elif args.query == "starve":
        sres = max_starvation(spec, scheme=args.scheme,
                              engine=engine, cache=cache)
        elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer
        print(f"  {args.scheme}: playout can starve for at most "
              f"{sres.max_rounds} consecutive round(s) "
              f"({elapsed:.1f}s wall)")
        witness = sres.witness
    else:
        res = max_late_envelope(spec, scheme=args.scheme,
                                engine=engine, cache=cache)
        elapsed = time.time() - started  # repro-lint: disable=RL001 -- progress timer
        print(f"  {args.scheme}: certified max late "
              f"{res.max_late}/{res.total_packets} "
              f"({res.late_fraction:.3f}); no trace reaches "
              f"{res.unsat_threshold} (UNSAT certificate; "
              f"{elapsed:.1f}s wall"
              + (", cached" if res.from_cache else "") + ")")
        witness = res.witness
    print("adversarial witness trace:")
    print(format_trace(witness))
    if args.cex_out:
        with open(args.cex_out, "w", encoding="utf-8") as handle:
            write_trace_jsonl(witness, handle)
        print(f"[wrote counterexample trace to {args.cex_out}]")
    return 0


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "target",
        choices=sorted(BUILDERS) + ["all", "list", "trace",
                                    "campaign", "verify"],
        help="which artefact to regenerate ('trace' runs one "
             "instrumented session, 'campaign' runs N concurrent "
             "sessions on one bottleneck, 'verify' certifies a "
             "worst-case late-packet envelope)")
    parser.add_argument(
        "--scale", choices=["quick", "full", "paper"], default=None,
        help="scale profile (default: $REPRO_SCALE or quick)")
    parser.add_argument(
        "-o", "--output-dir", default=None,
        help="also save the artefact(s) under this directory")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan replications/model solves out over N processes "
             "(default: $REPRO_WORKERS or serial)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="re-simulate everything, bypassing the result cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    parser.add_argument(
        "--mc-kernel", choices=list(mc_kernel.KERNELS), default=None,
        help="model Monte-Carlo engine (default: $REPRO_MC_KERNEL "
             "or vectorized)")
    parser.add_argument(
        "--telemetry-out", default=None, metavar="FILE",
        help="stream campaign telemetry (spans + metrics) to FILE "
             "as JSON lines")
    parser.add_argument(
        "--trace-chrome", default=None, metavar="FILE",
        help="write the campaign span tree to FILE as Chrome "
             "trace_event JSON (open in Perfetto)")
    parser.add_argument(
        "--no-telemetry-summary", action="store_true",
        help="skip the end-of-campaign telemetry summary table")
    group = parser.add_argument_group("trace target")
    group.add_argument(
        "--setting", choices=sorted(ALL_SETTINGS), default="2-2",
        help="validation setting to run (default: 2-2)")
    group.add_argument(
        "--scheme", choices=["dmp", "static"], default="dmp",
        help="streaming scheme (default: dmp)")
    group.add_argument(
        "--queue-discipline", choices=list(QUEUE_DISCIPLINES),
        default="droptail",
        help="bottleneck queue discipline (default: droptail)")
    group.add_argument(
        "--seed", type=int, default=1,
        help="simulation seed (default: 1)")
    group.add_argument(
        "--duration", type=float, default=30.0, metavar="S",
        help="video duration in simulated seconds (default: 30)")
    group.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="stream every probe event to FILE as JSON lines")
    group.add_argument(
        "--timeseries", default=None, metavar="FILE",
        help="sample cwnd/queue/buffer curves to FILE as CSV")
    group = parser.add_argument_group("campaign target")
    group.add_argument(
        "--sessions", type=int, default=20, metavar="N",
        help="number of concurrent sessions (default: 20)")
    group.add_argument(
        "--churn", type=float, default=0.0, metavar="RATE",
        help="session arrival rate per second (0 = staggered "
             "starts; default: 0)")
    group.add_argument(
        "--service-batch", type=int, default=8, metavar="K",
        help="bottleneck link batch size (1 = exact per-packet "
             "service; default: 8)")
    group.add_argument(
        "--backend", choices=list(meanfield.BACKENDS),
        default="packet",
        help="campaign solver: the packet-level simulator or the "
             "deterministic mean-field population ODE (cost "
             "independent of --sessions; default: packet)")
    group.add_argument(
        "--health-tau", type=float, default=6.0, metavar="S",
        help="reference startup delay for the health rollup "
             "(default: 6)")
    group.add_argument(
        "--health-out", default=None, metavar="FILE",
        help="write the per-session QoE health rollup to FILE as "
             "JSON")
    group.add_argument(
        "--prometheus-out", default=None, metavar="FILE",
        help="write the health rollup to FILE in Prometheus text "
             "exposition format")
    group.add_argument(
        "--dashboard-out", default=None, metavar="FILE",
        help="write a self-contained static HTML dashboard to FILE "
             "(inline JSON, no server)")
    group.add_argument(
        "--record-trigger", action="append", default=[],
        metavar="SPEC",
        help="arm a flight-recorder trigger "
             "(kind[:threshold[:window_s]]; kinds: stall, "
             "drop_burst, sendbuf, death; repeatable)")
    group.add_argument(
        "--record-out", default="recorder", metavar="DIR",
        help="directory for triggered JSONL windows "
             "(default: recorder/)")
    group = parser.add_argument_group("verify target")
    group.add_argument(
        "--paths", type=int, default=2, metavar="K",
        help="number of paths (default: 2)")
    group.add_argument(
        "--ratio", type=float, default=1.6,
        help="aggregate provisioning ratio; per-path rate is "
             "ceil(ratio * mu_r / K) (default: 1.6)")
    group.add_argument(
        "--tau", type=int, default=2, metavar="R",
        help="startup delay in rounds (default: 2)")
    group.add_argument(
        "--rounds", type=int, default=12, metavar="T",
        help="horizon in rounds (default: 12)")
    group.add_argument(
        "--loss-budget", type=int, default=1, metavar="L",
        help="adversarial losses allowed per path over the horizon "
             "(default: 1)")
    group.add_argument(
        "--mu-round", type=int, default=4, metavar="N",
        help="packets generated per round (default: 4)")
    group.add_argument(
        "--slack", type=int, default=None, metavar="W",
        help="per-path service slack budget (default: one full "
             "round of outage, i.e. the path rate)")
    group.add_argument(
        "--path-delay", type=int, default=0, metavar="D",
        help="per-path delivery delay in rounds (default: 0)")
    group.add_argument(
        "--path-buffer", type=int, default=4, metavar="B",
        help="per-path send-buffer capacity in packets (default: 4)")
    group.add_argument(
        "--engine", choices=["auto", "z3", "exhaustive"],
        default="auto",
        help="verification engine (default: z3 when installed, "
             "else exhaustive search on small instances)")
    group.add_argument(
        "--query", choices=["envelope", "starve", "compare"],
        default="envelope",
        help="what to certify: the max-late envelope, the longest "
             "possible playout starvation, or a DMP-vs-static "
             "comparison (default: envelope)")
    group.add_argument(
        "--cex-out", default=None, metavar="FILE",
        help="write the adversarial witness trace to FILE as JSON "
             "lines")
    args = parser.parse_args(argv)

    try:
        return _dispatch(parser, args)
    except MissingDependencyError as exc:
        return _report_missing_dependency(exc)


def _dispatch(parser, args) -> int:
    """Route one parsed invocation (split from :func:`main` so every
    target shares the optional-dependency error path)."""
    if args.target == "list":
        for name in sorted(BUILDERS) + ["trace", "campaign",
                                        "verify"]:
            print(name)
        return 0

    if args.target == "trace":
        return _run_trace(args)

    if args.target == "verify":
        return _run_verify(args, parser)

    if args.target == "campaign":
        if args.sessions < 1:
            parser.error("--sessions must be >= 1")
        if args.churn < 0:
            parser.error("--churn must be >= 0")
        if args.service_batch < 1:
            parser.error("--service-batch must be >= 1")
        if args.health_tau < 0:
            parser.error("--health-tau must be >= 0")
        from repro.obs.recorder import parse_trigger
        for spec in args.record_trigger:
            try:
                parse_trigger(spec)
            except ValueError as exc:
                parser.error(f"--record-trigger: {exc}")
        if args.backend == "meanfield":
            if args.sessions < 2:
                parser.error("--backend meanfield needs --sessions "
                             ">= 2 (it is a population model)")
            if args.queue_discipline not in \
                    meanfield.MEANFIELD_DISCIPLINES:
                parser.error(
                    "--backend meanfield supports "
                    f"{list(meanfield.MEANFIELD_DISCIPLINES)}; got "
                    f"{args.queue_discipline!r}")
            if args.churn > 0:
                parser.error("--backend meanfield assumes "
                             "synchronized starts; --churn must be 0")
            if args.health_out or args.prometheus_out \
                    or args.dashboard_out or args.record_trigger:
                parser.error(
                    "--backend meanfield has no per-session probe "
                    "stream; health/recorder flags need the packet "
                    "backend")
            return _run_meanfield(args)
        return _run_campaign(args)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    prev_workers = parallel._default["max_workers"]
    prev_cache = dict(result_cache._default)
    prev_kernel = mc_kernel._default["kernel"]
    parallel.configure(max_workers=args.workers)
    result_cache.configure(enabled=not args.no_cache,
                           directory=args.cache_dir)
    if args.mc_kernel is not None:
        mc_kernel.configure(args.mc_kernel)

    profile = scale_profile(args.scale)
    targets = sorted(BUILDERS) if args.target == "all" \
        else [args.target]
    try:
        tel = telemetry.start()
        try:
            writer = telemetry.TelemetryJsonlWriter(
                tel, args.telemetry_out) if args.telemetry_out \
                else None
            try:
                with tel.span("campaign", label=args.target,
                              profile=profile.name):
                    for name in targets:
                        started = time.time()  # repro-lint: disable=RL001 -- progress timer
                        with tel.span("target", label=name):
                            text = BUILDERS[name](profile=profile)
                        print(text)
                        status = (f"[{name}: {time.time() - started:.1f}s at "  # repro-lint: disable=RL001 -- progress timer
                                  f"profile={profile.name}")
                        cache = result_cache.default_cache()
                        if cache is not None:
                            status += (f", cache: {cache.hits} hits / "
                                       f"{cache.misses} misses")
                        print(status + "]\n")
                        if args.output_dir:
                            path = save_output(f"{name}.txt", text,
                                               directory=args.output_dir)
                            print(f"[saved to {path}]\n")
            finally:
                # Closing the writer flushes metrics even when a
                # builder raised: aborted runs leave valid logs.
                if writer is not None:
                    writer.close()
                    print(f"[wrote telemetry to "
                          f"{args.telemetry_out}]")
        finally:
            telemetry.stop(tel)
        if args.trace_chrome:
            events = telemetry.export_chrome_trace(
                tel, args.trace_chrome)
            print(f"[wrote {events} trace events to "
                  f"{args.trace_chrome}]")
        if not args.no_telemetry_summary:
            print(telemetry.summary(tel))
    finally:
        parallel.configure(max_workers=prev_workers)
        result_cache._default.update(prev_cache)
        result_cache._default["instance"] = None
        mc_kernel.configure(prev_kernel)
    return 0


if __name__ == "__main__":
    sys.exit(main())
