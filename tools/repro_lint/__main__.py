"""CLI: ``python -m tools.repro_lint [paths...] [--diff FILE|-]``.

Prints ruff-style ``path:line:col: RULE message`` findings on stdout
and exits 1 when there are any; a one-line summary goes to stderr.
``--diff`` additionally runs the diff-aware checks (the cache-key /
CODE_VERSION rule) against a unified diff read from a file or stdin::

    git diff origin/main...HEAD | python -m tools.repro_lint --diff -
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.repro_lint.engine import lint_paths
from tools.repro_lint.rules import ALL_RULES

DEFAULT_PATHS = ["src", "tests", "benchmarks"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="Domain-aware static analysis for this repository "
                    "(determinism, probe-schema and cache-key "
                    "invariants).")
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help="files or directories to lint (default: src tests "
             "benchmarks)")
    parser.add_argument(
        "--diff", metavar="FILE",
        help="unified diff to run the diff-aware checks against "
             "('-' reads stdin)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE}  {rule.SUMMARY}")
        return 0

    diff_text = None
    if args.diff is not None:
        if args.diff == "-":
            diff_text = sys.stdin.read()
        else:
            with open(args.diff, "r", encoding="utf-8") as handle:
                diff_text = handle.read()

    findings = lint_paths(args.paths, diff_text=diff_text)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("repro-lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
